// Tests for the tensor-algebra IR, dense storage, workload definitions and
// the reference executor.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tensor/reference.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::tensor {
namespace {

TEST(AffineAccess, Evaluate) {
  // A[c, y+p, x+q] over loops (k,c,y,x,p,q).
  const auto acc = accessFromTerms(6, {{1}, {2, 4}, {3, 5}});
  EXPECT_EQ(acc.evaluate({9, 1, 2, 3, 4, 5}), (linalg::IntVector{1, 6, 8}));
}

TEST(AffineAccess, Restriction) {
  const auto acc = accessFromTerms(6, {{1}, {2, 4}, {3, 5}});
  const auto sub = acc.restrictedTo({0, 2, 3});  // loops k, y, x
  EXPECT_EQ(sub.loopCount(), 3u);
  EXPECT_EQ(sub.coeff().at(0, 0), 0);  // c does not depend on k
  EXPECT_EQ(sub.coeff().at(1, 1), 1);  // y+p depends on y
  EXPECT_EQ(sub.coeff().at(2, 2), 1);  // x+q depends on x
}

TEST(AffineAccess, OffsetsApply) {
  linalg::IntMatrix coeff{{1, 0}};
  AffineAccess acc(coeff, linalg::IntVector{5});
  EXPECT_EQ(acc.evaluate({2, 9}), (linalg::IntVector{7}));
}

TEST(TensorAlgebra, GemmShape) {
  const auto g = workloads::gemm(4, 5, 6);
  EXPECT_EQ(g.loopCount(), 3u);
  EXPECT_EQ(g.totalMacs(), 4 * 5 * 6);
  EXPECT_EQ(g.tensorShape(g.inputs()[0]), (linalg::IntVector{4, 6}));  // A[m,k]
  EXPECT_EQ(g.tensorShape(g.inputs()[1]), (linalg::IntVector{5, 6}));  // B[n,k]
  EXPECT_EQ(g.tensorShape(g.output()), (linalg::IntVector{4, 5}));     // C[m,n]
}

TEST(TensorAlgebra, ConvInputShapeIncludesHalo) {
  const auto c = workloads::conv2d(2, 3, 4, 5, 3, 3);
  // A[c, y+p, x+q]: (3, 4+3-1, 5+3-1)
  EXPECT_EQ(c.tensorShape(c.inputs()[0]), (linalg::IntVector{3, 6, 7}));
}

TEST(TensorAlgebra, LoopIndexLookup) {
  const auto g = workloads::gemm(2, 2, 2);
  EXPECT_EQ(g.loopIndex("k"), 2u);
  EXPECT_THROW(g.loopIndex("z"), Error);
}

TEST(TensorAlgebra, LabelOrderPutsOutputLast) {
  const auto mt = workloads::mttkrp(2, 2, 2, 2);
  const auto order = mt.tensorsInLabelOrder();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0]->tensor, "A");
  EXPECT_EQ(order[3]->tensor, "D");
}

TEST(DenseTensor, FlattenAndBounds) {
  DenseTensor t(linalg::IntVector{2, 3});
  t.at({1, 2}) = 7.0;
  EXPECT_EQ(t.raw()[5], 7.0);
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0, 3}), Error);
}

TEST(DenseTensor, MaxAbsDiff) {
  DenseTensor a(linalg::IntVector{2});
  DenseTensor b(linalg::IntVector{2});
  a.at({0}) = 1.0;
  b.at({0}) = 3.5;
  EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 2.5);
}

TEST(Reference, TinyGemmByHand) {
  const auto g = workloads::gemm(2, 2, 2);
  TensorEnv env;
  DenseTensor a(linalg::IntVector{2, 2}), b(linalg::IntVector{2, 2});
  // A = [1 2; 3 4], B[n,k] = [5 6; 7 8] => C[m,n] = sum_k A[m,k]*B[n,k]
  a.at({0, 0}) = 1; a.at({0, 1}) = 2; a.at({1, 0}) = 3; a.at({1, 1}) = 4;
  b.at({0, 0}) = 5; b.at({0, 1}) = 6; b.at({1, 0}) = 7; b.at({1, 1}) = 8;
  env.emplace("A", a);
  env.emplace("B", b);
  const DenseTensor c = referenceExecute(g, env);
  EXPECT_DOUBLE_EQ(c.at({0, 0}), 1 * 5 + 2 * 6);
  EXPECT_DOUBLE_EQ(c.at({0, 1}), 1 * 7 + 2 * 8);
  EXPECT_DOUBLE_EQ(c.at({1, 0}), 3 * 5 + 4 * 6);
  EXPECT_DOUBLE_EQ(c.at({1, 1}), 3 * 7 + 4 * 8);
}

TEST(Reference, MissingInputThrows) {
  const auto g = workloads::gemm(2, 2, 2);
  TensorEnv env;
  EXPECT_THROW(referenceExecute(g, env), Error);
}

TEST(Reference, MakeRandomInputsCoversAllInputs) {
  const auto mt = workloads::mttkrp(3, 4, 5, 6);
  const auto env = makeRandomInputs(mt);
  EXPECT_EQ(env.size(), 3u);
  EXPECT_TRUE(env.count("A") && env.count("B") && env.count("C"));
}

// Each workload's reference result must match a direct hand-rolled loop.
TEST(Reference, MttkrpMatchesDirectLoops) {
  const auto alg = workloads::mttkrp(3, 4, 2, 2);
  const auto env = makeRandomInputs(alg, 42);
  const DenseTensor d = referenceExecute(alg, env);
  const auto &A = env.at("A"), &B = env.at("B"), &C = env.at("C");
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 4; ++j) {
      double acc = 0;
      for (std::int64_t k = 0; k < 2; ++k)
        for (std::int64_t l = 0; l < 2; ++l)
          acc += A.at({i, k, l}) * B.at({k, j}) * C.at({l, j});
      EXPECT_DOUBLE_EQ(d.at({i, j}), acc) << i << "," << j;
    }
}

TEST(Reference, Conv2dMatchesDirectLoops) {
  const auto alg = workloads::conv2d(2, 3, 4, 4, 3, 3);
  const auto env = makeRandomInputs(alg, 7);
  const DenseTensor out = referenceExecute(alg, env);
  const auto &A = env.at("A"), &B = env.at("B");
  for (std::int64_t k = 0; k < 2; ++k)
    for (std::int64_t y = 0; y < 4; ++y)
      for (std::int64_t x = 0; x < 4; ++x) {
        double acc = 0;
        for (std::int64_t c = 0; c < 3; ++c)
          for (std::int64_t p = 0; p < 3; ++p)
            for (std::int64_t q = 0; q < 3; ++q)
              acc += A.at({c, y + p, x + q}) * B.at({k, c, p, q});
        EXPECT_DOUBLE_EQ(out.at({k, y, x}), acc);
      }
}

TEST(Reference, DepthwiseMatchesDirectLoops) {
  const auto alg = workloads::depthwiseConv(3, 4, 4, 3, 3);
  const auto env = makeRandomInputs(alg, 9);
  const DenseTensor out = referenceExecute(alg, env);
  const auto &A = env.at("A"), &B = env.at("B");
  for (std::int64_t k = 0; k < 3; ++k)
    for (std::int64_t y = 0; y < 4; ++y)
      for (std::int64_t x = 0; x < 4; ++x) {
        double acc = 0;
        for (std::int64_t p = 0; p < 3; ++p)
          for (std::int64_t q = 0; q < 3; ++q)
            acc += A.at({k, y + p, x + q}) * B.at({k, p, q});
        EXPECT_DOUBLE_EQ(out.at({k, y, x}), acc);
      }
}

TEST(Reference, TtmcMatchesDirectLoops) {
  const auto alg = workloads::ttmc(2, 3, 2, 3, 2);
  const auto env = makeRandomInputs(alg, 11);
  const DenseTensor out = referenceExecute(alg, env);
  const auto &A = env.at("A"), &B = env.at("B"), &C = env.at("C");
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      for (std::int64_t k = 0; k < 2; ++k) {
        double acc = 0;
        for (std::int64_t l = 0; l < 3; ++l)
          for (std::int64_t m = 0; m < 2; ++m)
            acc += A.at({i, l, m}) * B.at({l, j}) * C.at({m, k});
        EXPECT_DOUBLE_EQ(out.at({i, j, k}), acc);
      }
}

TEST(Reference, BatchedGemvMatchesDirectLoops) {
  const auto alg = workloads::batchedGemv(3, 4, 5);
  const auto env = makeRandomInputs(alg, 13);
  const DenseTensor out = referenceExecute(alg, env);
  const auto &A = env.at("A"), &B = env.at("B");
  for (std::int64_t m = 0; m < 3; ++m)
    for (std::int64_t n = 0; n < 4; ++n) {
      double acc = 0;
      for (std::int64_t k = 0; k < 5; ++k)
        acc += A.at({m, k, n}) * B.at({m, k});
      EXPECT_DOUBLE_EQ(out.at({m, n}), acc);
    }
}

TEST(Workloads, ResNetLayerShapes) {
  const auto l2 = workloads::conv2dResNetLayer2();
  EXPECT_EQ(l2.loops()[0].extent, 64);
  EXPECT_EQ(l2.loops()[2].extent, 56);
  const auto l5 = workloads::conv2dResNetLayer5();
  EXPECT_EQ(l5.loops()[0].extent, 512);
  EXPECT_EQ(l5.loops()[2].extent, 7);
}

}  // namespace
}  // namespace tensorlib::tensor
