// Shared test-harness sampling over the scenario library: a bounded,
// deterministic draw of design specs per registered workload, honoring the
// workload's all-unicast flag and sweep budget. Used by the table-driven
// cost and baselines tests so both sample identical design spaces.
#pragma once

#include <vector>

#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::testing {

inline stt::EnumerationOptions workloadEnumOptions(
    const tensor::workloads::NamedWorkload& w) {
  stt::EnumerationOptions options;
  options.dropAllUnicast = !w.allowAllUnicast;
  return options;
}

/// Design specs drawn across loop selections (some selections enumerate
/// empty — e.g. depthwise's first), capped by the workload's sweep budget.
inline std::vector<stt::DataflowSpec> cappedSpecs(
    const tensor::workloads::NamedWorkload& w) {
  const stt::EnumerationOptions options = workloadEnumOptions(w);
  std::vector<stt::DataflowSpec> specs;
  for (const auto& sel : stt::allLoopSelections(w.algebra)) {
    for (auto& spec : stt::enumerateTransforms(w.algebra, sel, options)) {
      specs.push_back(std::move(spec));
      if (specs.size() >= w.sweepCap) return specs;
    }
  }
  return specs;
}

}  // namespace tensorlib::testing
