// Design-space enumeration tests: coverage of the paper's named dataflows,
// canonicalization, deduplication and structural invariants of the space.
#include "stt/enumerate.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::stt {
namespace {

namespace wl = tensor::workloads;

TEST(Enumerate, AllLoopSelectionsCount) {
  EXPECT_EQ(allLoopSelections(wl::gemm(4, 4, 4)).size(), 1u);     // C(3,3)
  EXPECT_EQ(allLoopSelections(wl::mttkrp(4, 4, 4, 4)).size(), 4u);  // C(4,3)
  EXPECT_EQ(allLoopSelections(wl::conv2d(4, 4, 4, 4, 3, 3)).size(), 20u);
}

TEST(Enumerate, GemmSpaceIsSubstantialAndDeduplicated) {
  const auto g = wl::gemm(16, 16, 16);
  const auto specs = enumerateTransforms(g, LoopSelection(g, {0, 1, 2}));
  // The paper reports 148 distinct GEMM design points in Fig. 6(a); our
  // canonicalized unimodular {-1,0,1} family lands in the same regime.
  EXPECT_GT(specs.size(), 50u);
  EXPECT_LT(specs.size(), 400u);
  std::set<std::string> sigs;
  for (const auto& s : specs)
    EXPECT_TRUE(sigs.insert(s.signature()).second) << s.describe();
}

TEST(Enumerate, GemmLettersObeyStructuralConstraints) {
  const auto g = wl::gemm(16, 16, 16);
  const auto specs = enumerateTransforms(g, LoopSelection(g, {0, 1, 2}));
  for (const auto& s : specs) {
    const std::string letters = s.letters();
    // Every GEMM tensor has reuse nullity exactly 1 under the MNK selection:
    // letters are drawn from {S,T,M}, never U or B.
    for (char c : letters) EXPECT_TRUE(c == 'S' || c == 'T' || c == 'M') << letters;
    // Two stationary tensors would force two parallel (0,0,*) columns in T,
    // which is singular.
    EXPECT_LT(std::count(letters.begin(), letters.end(), 'T'), 2) << letters;
  }
}

TEST(Enumerate, CoversAllPaperGemmDataflows) {
  // Fig. 5(a) names seven GEMM dataflows; all must be realizable.
  const auto g = wl::gemm(16, 16, 16);
  for (const std::string label :
       {"MNK-MTM", "MNK-MSM", "MNK-STM", "MNK-MMT", "MNK-MST", "MNK-SST",
        "MNK-TSS"}) {
    const auto spec = findDataflowByLabel(g, label);
    ASSERT_TRUE(spec.has_value()) << label;
    EXPECT_EQ(spec->label(), label);
  }
}

TEST(Enumerate, CoversAllPaperBatchedGemvDataflows) {
  // Fig. 5(b): Batched-GEMV dataflows all carry a unicast A.
  const auto bg = wl::batchedGemv(16, 16, 16);
  for (const std::string label :
       {"MNK-USS", "MNK-UST", "MNK-UTS", "MNK-UMM", "MNK-UMT", "MNK-UMS"}) {
    const auto spec = findDataflowByLabel(bg, label);
    ASSERT_TRUE(spec.has_value()) << label;
    EXPECT_EQ(spec->label(), label);
  }
}

TEST(Enumerate, CoversPaperConvDataflows) {
  // KCX-SST / KCX-STS are the paper's "well-known output-stationary and
  // weight-stationary" conv dataflows. XPQ/KXY selections force rank-2 /
  // rank-0 letters under our (strict Table-I) labeling: the paper's figure
  // writes the dominant component instead (e.g. its XPQ-MMT is our XPQ-MMB).
  const auto conv = wl::conv2d(16, 16, 14, 14, 3, 3);
  for (const std::string label : {"KCX-SST", "KCX-STS", "KCX-STM", "XPQ-MMB",
                                  "KXY-SBU"}) {
    const auto spec = findDataflowByLabel(conv, label);
    ASSERT_TRUE(spec.has_value()) << label;
    EXPECT_EQ(spec->label(), label);
  }
}

TEST(Enumerate, CoversPaperMttkrpAndTtmcDataflows) {
  const auto mt = wl::mttkrp(16, 16, 16, 16);
  for (const std::string label : {"IKL-UBBB", "IJK-SSBT", "JKL-SSTB"}) {
    const auto spec = findDataflowByLabel(mt, label);
    ASSERT_TRUE(spec.has_value()) << label;
  }
  const auto tt = wl::ttmc(16, 16, 16, 16, 16);
  for (const std::string label :
       {"IJK-BBBU", "ILM-UBBB", "IKL-SBBS", "JKL-BSBS"}) {
    const auto spec = findDataflowByLabel(tt, label);
    ASSERT_TRUE(spec.has_value()) << label;
  }
}

TEST(Enumerate, FindDataflowRejectsWrongLetterCount) {
  const auto g = wl::gemm(4, 4, 4);
  EXPECT_THROW(findDataflow(g, LoopSelection(g, {0, 1, 2}), "SS"), Error);
}

TEST(Enumerate, FindDataflowByLabelRejectsMalformed) {
  const auto g = wl::gemm(4, 4, 4);
  EXPECT_THROW(findDataflowByLabel(g, "MNKSST"), Error);
  EXPECT_THROW(findDataflowByLabel(g, "MNZ-SST"), Error);
}

TEST(Enumerate, ImpossibleLettersReturnNullopt) {
  // GEMM under MNK cannot make any tensor unicast (every access has
  // nullity 1).
  const auto g = wl::gemm(4, 4, 4);
  EXPECT_FALSE(
      findDataflow(g, LoopSelection(g, {0, 1, 2}), "USS").has_value());
}

TEST(Enumerate, UnimodularityHolds) {
  const auto g = wl::gemm(8, 8, 8);
  for (const auto& s : enumerateTransforms(g, LoopSelection(g, {0, 1, 2})))
    EXPECT_TRUE(s.transform().isUnimodular());
}

TEST(Enumerate, DepthwiseSpaceSmallerThanGemm) {
  // Fig. 6 shows far fewer distinct depthwise-conv designs (33) than GEMM
  // designs (148): the small kernel loops and the depthwise structure
  // collapse many transforms into the same dataflow signature. We compare
  // like-for-like on a single representative selection.
  const auto g = wl::gemm(16, 16, 16);
  const auto dw = wl::depthwiseConv(16, 8, 8, 3, 3);
  const auto gemmCount =
      enumerateTransforms(g, LoopSelection(g, {0, 1, 2})).size();
  const auto dwSel = LoopSelection::byNames(dw, {"k", "y", "x"});
  const auto dwCount = enumerateTransforms(dw, dwSel).size();
  EXPECT_LT(dwCount, gemmCount);
}

TEST(Enumerate, FullReuseFilterHonored) {
  // TTMc over (i,j,l) leaves C[m,k] untouched by any selected loop:
  // rank-3 FullReuse. The default filter drops such specs; disabling it
  // keeps them.
  const auto tt = wl::ttmc(8, 8, 8, 8, 8);
  const auto sel = LoopSelection::byNames(tt, {"i", "j", "l"});

  const auto filtered = enumerateTransforms(tt, sel);
  for (const auto& s : filtered)
    for (const auto& t : s.tensors())
      EXPECT_NE(t.dataflow.dataflowClass, DataflowClass::FullReuse);
  EXPECT_TRUE(filtered.empty());  // every (i,j,l) design has FullReuse C

  EnumerationOptions keep;
  keep.dropFullReuse = false;
  const auto unfiltered = enumerateTransforms(tt, sel, keep);
  EXPECT_GT(unfiltered.size(), 0u);
  bool sawFullReuse = false;
  for (const auto& s : unfiltered)
    for (const auto& t : s.tensors())
      if (t.dataflow.dataflowClass == DataflowClass::FullReuse)
        sawFullReuse = true;
  EXPECT_TRUE(sawFullReuse);
}

TEST(Enumerate, SignatureHashAgreesWithSignatureStrings) {
  // The hot dedupe path keys on signatureHash(); it must partition the
  // space exactly like the canonical signature strings it replaces.
  for (const auto& algebra : {wl::gemm(16, 16, 16), wl::mttkrp(6, 6, 6, 6)}) {
    EnumerationOptions keepAll;
    keepAll.dedupeBySignature = false;
    for (const auto& sel : allLoopSelections(algebra)) {
      std::map<std::uint64_t, std::string> byHash;
      std::set<std::string> bySignature;
      for (const auto& s : enumerateTransforms(algebra, sel, keepAll)) {
        const std::string sig = s.signature();
        const auto [it, inserted] = byHash.emplace(s.signatureHash(), sig);
        EXPECT_EQ(it->second, sig) << "hash collision: " << s.describe();
        EXPECT_EQ(inserted, bySignature.insert(sig).second) << s.describe();
      }
      EXPECT_EQ(byHash.size(), bySignature.size());
    }
  }
}

TEST(Enumerate, SharedContextAliasesOneAlgebra) {
  // Zero-copy enumeration: every spec of one sweep shares the identical
  // (algebra, selection) context instead of owning deep copies.
  const auto g = wl::gemm(8, 8, 8);
  const auto specs = enumerateTransforms(g, LoopSelection(g, {0, 1, 2}));
  ASSERT_GT(specs.size(), 1u);
  for (const auto& s : specs) {
    EXPECT_EQ(s.context().get(), specs.front().context().get());
    EXPECT_EQ(&s.algebra(), &specs.front().algebra());
  }
  // Copying a spec shares the context rather than cloning the algebra.
  const DataflowSpec copy = specs.front();
  EXPECT_EQ(&copy.algebra(), &specs.front().algebra());
}

TEST(Enumerate, CandidateCacheIsBoundedWithStats) {
  const std::size_t previousCapacity = setCandidateCacheCapacity(2);
  clearCandidateCache();
  const auto before = candidateCacheStats();

  const auto enumerateWith = [](int maxEntry, bool unimodular) {
    EnumerationOptions o;
    o.maxEntry = maxEntry;
    o.requireUnimodular = unimodular;
    const auto g = wl::gemm(4, 4, 4);
    return enumerateTransforms(g, LoopSelection(g, {0, 1, 2}), o).size();
  };

  // Three distinct option keys through a capacity-2 memo: the first key is
  // evicted, re-requesting it misses again but stays correct.
  const std::size_t a = enumerateWith(1, true);
  enumerateWith(1, false);
  enumerateWith(2, true);
  const auto evicted = candidateCacheStats();
  EXPECT_EQ(evicted.entries, 2u);
  EXPECT_GE(evicted.evictions, before.evictions + 1);
  EXPECT_EQ(enumerateWith(1, true), a);
  const auto after = candidateCacheStats();
  EXPECT_GE(after.misses, before.misses + 4);  // 3 distinct + 1 re-miss

  // Warm repetition is a pure hit.
  enumerateWith(1, true);
  EXPECT_GE(candidateCacheStats().hits, after.hits + 1);

  setCandidateCacheCapacity(previousCapacity);
}

}  // namespace
}  // namespace tensorlib::stt
