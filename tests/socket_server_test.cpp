// Tests for the socket front-end (driver/socket_server.*): concurrent
// connections with per-connection fairness, bit-identical answers vs the
// in-process reference daemon, deadline expiry over the wire, disconnect
// cancellation, slow-reader eviction, truncated-request rejection, and the
// shutdown drain that delivers the summary to the requesting connection.
#include "driver/socket_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cost/backend.hpp"
#include "driver/explore_client.hpp"
#include "driver/pareto.hpp"
#include "driver/wire.hpp"
#include "support/fault.hpp"
#include "support/jsonl.hpp"
#include "support/net.hpp"

extern "C" {
#include <unistd.h>
}

namespace tensorlib::driver {
namespace {

const char* kQueries[] = {
    R"({"workload": "gemm", "rows": 4, "cols": 4, "max_entry": 1})",
    R"({"workload": "gemm", "rows": 4, "cols": 4, "max_entry": 1, "objective": "power"})",
    R"({"workload": "gemm", "rows": 6, "cols": 6, "max_entry": 1, "objective": "energy-delay"})",
};

/// Same volatile-part stripping as tools/chaos_runner: the "query" index is
/// per-connection and the cache counters depend on global arrival order.
std::string canonical(const std::string& response) {
  std::string s = response;
  if (s.rfind("{\"query\": ", 0) == 0) {
    const auto comma = s.find(", ");
    if (comma != std::string::npos) s = "{" + s.substr(comma + 2);
  }
  const auto cache = s.rfind(", \"cache\": ");
  if (cache != std::string::npos && s.size() >= 2 &&
      s.compare(s.size() - 2, 2, "}}") == 0) {
    s = s.substr(0, cache) + "}";
  }
  return s;
}

/// Reference responses from a fresh, socket-free daemon fed the same query
/// sequence — what every socket answer must match.
std::vector<std::string> referenceLines(std::size_t maxFrontier) {
  ExplorationDaemon daemon;
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < std::size(kQueries); ++i) {
    auto request = wire::parseRequest(support::parseJsonLine(kQueries[i]));
    const std::string backend = cost::backendKindName(request.query->backend);
    const std::string objective = objectiveName(request.query->objective);
    const auto outcome = daemon.runOne("ref", std::move(*request.query));
    EXPECT_TRUE(outcome.has_value() && !outcome->failed());
    lines.push_back(wire::resultLine(i, request.name, backend, objective,
                                     *outcome->result, maxFrontier));
  }
  daemon.shutdown();
  return lines;
}

struct Fixture {
  std::unique_ptr<ExplorationDaemon> daemon;
  std::unique_ptr<SocketServer> server;

  void start(SocketServerOptions socketOptions = {},
             DaemonOptions daemonOptions = {}) {
    if (socketOptions.port < 0 && socketOptions.unixSocketPath.empty())
      socketOptions.port = 0;  // ephemeral
    daemon = std::make_unique<ExplorationDaemon>(std::move(daemonOptions));
    server = std::make_unique<SocketServer>(*daemon, std::move(socketOptions));
    ASSERT_TRUE(server->start()) << server->lastError();
  }

  ~Fixture() {
    support::FaultInjector::instance().disarm();
    if (server) server->close("");
    if (daemon) daemon->shutdown();
  }

  ClientOptions clientOptions() const {
    ClientOptions o;
    o.port = server->port();
    return o;
  }

  /// Polls the server stats until `done` accepts them (15 s cap — the
  /// slow-reader path needs dozens of completed responses, which takes a
  /// while under sanitizers).
  bool waitForStats(const std::function<bool(const SocketServerStats&)>& done) {
    for (int i = 0; i < 1500; ++i) {
      if (done(server->stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }
};

TEST(SocketServer, MatchesReferenceServiceBitForBit) {
  // One connection, one worker, sequential requests: arrival order equals
  // the reference order, so even the per-query cache counters must match.
  Fixture f;
  DaemonOptions dopts;
  dopts.workers = 1;
  f.start({}, std::move(dopts));
  ASSERT_GT(f.server->port(), 0);

  const auto expected = referenceLines(16);
  ExploreClient client(f.clientOptions());
  for (std::size_t i = 0; i < std::size(kQueries); ++i) {
    const auto response = client.request(kQueries[i]);
    ASSERT_TRUE(response.has_value()) << "query " << i;
    EXPECT_EQ(*response, expected[i]) << "query " << i;
  }
  EXPECT_EQ(f.server->stats().requests, std::size(kQueries));
  EXPECT_EQ(f.server->stats().parseErrors, 0u);
}

TEST(SocketServer, ServesEightConcurrentClientsIdentically) {
  Fixture f;
  DaemonOptions dopts;
  dopts.workers = 2;
  f.start({}, std::move(dopts));

  std::vector<std::string> expected;
  for (const auto& line : referenceLines(16)) expected.push_back(canonical(line));

  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      ExploreClient client(f.clientOptions());
      for (std::size_t i = 0; i < std::size(kQueries); ++i) {
        const auto response = client.request(kQueries[i]);
        if (!response.has_value() || canonical(*response) != expected[i]) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = f.server->stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.requests, std::size(kQueries) * kClients);
}

TEST(SocketServer, PerConnectionQueueBoundsAndFairness) {
  // Each connection is its own fairness client: a connection that floods
  // past its per-client bound gets "overloaded", while a second connection
  // with a single request is admitted and served.
  support::FaultInjector::instance().arm("work_unit=sleep:40@0");
  Fixture f;
  DaemonOptions dopts;
  dopts.workers = 1;
  dopts.perClientQueueBound = 1;
  dopts.queueBound = 16;
  f.start({}, std::move(dopts));

  ExploreClient flooder(f.clientOptions());
  ASSERT_TRUE(flooder.start());
  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) flooder.sendLine(kQueries[0]);

  ExploreClient polite(f.clientOptions());
  const auto response = polite.request(kQueries[0]);
  ASSERT_TRUE(response.has_value());
  // The polite connection was never shed — its own queue share was free.
  EXPECT_NE(response->find("\"frontier\""), std::string::npos) << *response;

  int overloaded = 0, answered = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto line = flooder.readLine();
    ASSERT_TRUE(line.has_value()) << "flooder lost line " << i;
    if (line->find("\"error\": \"overloaded\"") != std::string::npos) {
      ++overloaded;
    } else {
      ++answered;
    }
  }
  EXPECT_GT(overloaded, 0);
  EXPECT_GT(answered, 0);
}

TEST(SocketServer, DeadlineExpiresOverTheSocket) {
  support::FaultInjector::instance().arm("work_unit=sleep:30@0");
  Fixture f;
  f.start();
  ExploreClient client(f.clientOptions());
  std::string query = kQueries[0];
  query.insert(query.size() - 1, ", \"deadline_ms\": 1");
  const auto response = client.request(query);
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"timed_out\": true"), std::string::npos)
      << *response;
}

TEST(SocketServer, MidRequestDisconnectCancelsQueuedWork) {
  // Long first work unit keeps query 1 in flight while 2 and 3 sit queued;
  // dropping the connection must cancel exactly the queued two, complete
  // the in-flight one, and discard its response.
  support::FaultInjector::instance().arm("work_unit=sleep:200@1");
  Fixture f;
  DaemonOptions dopts;
  dopts.workers = 1;
  f.start({}, std::move(dopts));

  ExploreClient client(f.clientOptions());
  ASSERT_TRUE(client.start());
  for (const auto* q : kQueries) client.sendLine(q);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.dropConnection();

  ASSERT_TRUE(f.waitForStats([](const SocketServerStats& s) {
    return s.dropped >= 1 && s.cancelledOnDrop == 2;
  })) << "dropped=" << f.server->stats().dropped
      << " cancelled=" << f.server->stats().cancelledOnDrop;
  EXPECT_EQ(f.daemon->stats().cancelled, 2u);
  support::FaultInjector::instance().disarm();
  // The in-flight request completes and its response is discarded, never
  // delivered to a dead connection.
  EXPECT_TRUE(f.waitForStats(
      [](const SocketServerStats& s) { return s.discardedResponses >= 1; }));

  // The server is unharmed: a fresh connection gets full service.
  ExploreClient again(f.clientOptions());
  const auto response = again.request(kQueries[0]);
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"frontier\""), std::string::npos);
}

TEST(SocketServer, SlowReaderIsDroppedNotWaitedFor) {
  // Tiny server-side send buffer + tight write-queue bound over a unix
  // socket: a connection that floods requests and never reads must be
  // dropped at the bound while other connections keep full service.
  const std::string socketPath = "socket_server_test.sock";
  Fixture f;
  SocketServerOptions sopts;
  sopts.unixSocketPath = socketPath;
  sopts.writeQueueBound = 2;
  sopts.sendBufferBytes = 4096;
  DaemonOptions dopts;
  dopts.workers = 2;
  dopts.queueBound = 64;
  dopts.perClientQueueBound = 64;
  f.start(std::move(sopts), std::move(dopts));

  const int flood = support::net::connectUnix(socketPath);
  ASSERT_GE(flood, 0);
  // Cheap to answer (cache-hot after the first), big on the wire (~700
  // byte frontier lines): dozens of completed-but-unread responses pile
  // onto the tiny send buffer and the bounded write queue quickly.
  const std::string big =
      "{\"workload\": \"gemm\", \"rows\": 8, \"cols\": 8, \"max_entry\": 1}\n";
  for (int i = 0; i < 64; ++i) {
    if (!support::net::sendAll(flood, big.data(), big.size())) break;
  }
  ASSERT_TRUE(f.waitForStats([](const SocketServerStats& s) {
    return s.droppedSlowReader >= 1;
  })) << "write queue never overflowed";
  close(flood);

  // Meanwhile a reading connection still gets bit-identical answers.
  ClientOptions copts;
  copts.unixSocketPath = socketPath;
  ExploreClient reader(copts);
  const auto response = reader.request(kQueries[0]);
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"frontier\""), std::string::npos);
  unlink(socketPath.c_str());
}

TEST(SocketServer, TruncatedRequestIsNeverExecuted) {
  Fixture f;
  f.start();
  const int fd = support::net::connectTcp("127.0.0.1", f.server->port());
  ASSERT_GE(fd, 0);
  const char* partial = "{\"workload\": \"gemm\", \"rows\": 4";
  ASSERT_TRUE(support::net::sendAll(fd, partial, std::strlen(partial)));
  close(fd);  // dies mid-line, no '\n' ever sent
  ASSERT_TRUE(f.waitForStats(
      [](const SocketServerStats& s) { return s.truncatedLines == 1; }));
  EXPECT_EQ(f.server->stats().requests, 0u);
  EXPECT_EQ(f.daemon->stats().accepted, 0u);
}

TEST(SocketServer, OversizedLineDropsTheConnection) {
  Fixture f;
  SocketServerOptions sopts;
  sopts.maxLineBytes = 64;
  f.start(std::move(sopts));
  const int fd = support::net::connectTcp("127.0.0.1", f.server->port());
  ASSERT_GE(fd, 0);
  const std::string line(1024, 'x');
  support::net::sendAll(fd, line.data(), line.size());
  support::net::sendAll(fd, "\n", 1);
  ASSERT_TRUE(f.waitForStats(
      [](const SocketServerStats& s) { return s.dropped >= 1; }));
  EXPECT_EQ(f.server->stats().requests, 0u);
  close(fd);
}

TEST(SocketServer, ShutdownDrainsAndDeliversSummaryToRequester) {
  Fixture f;
  DaemonOptions dopts;
  dopts.workers = 1;
  f.start({}, std::move(dopts));

  // The tool's serve loop, in miniature.
  std::thread orchestrator([&] {
    f.server->waitForShutdownRequest();
    f.server->drain();
    f.daemon->shutdown();
    f.server->close(wire::shutdownSummaryLine(f.daemon->stats(),
                                              f.daemon->service().cacheStats()));
  });

  const int fd = support::net::connectTcp("127.0.0.1", f.server->port());
  ASSERT_GE(fd, 0);
  std::string out;
  for (const auto* q : {kQueries[0], kQueries[1]}) {
    out.append(q);
    out.push_back('\n');
  }
  out += "{\"shutdown\": true}\n";
  ASSERT_TRUE(support::net::sendAll(fd, out.data(), out.size()));

  support::net::LineReader reader(fd);
  std::vector<std::string> lines;
  while (const auto line = reader.next()) {
    if (line->complete) lines.push_back(line->text);
  }
  close(fd);
  orchestrator.join();

  // Both admitted queries were answered (the drain), then the summary —
  // delivered to the requesting connection, last.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"frontier\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"frontier\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"shutdown\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"cancelled\""), std::string::npos);
}

TEST(SocketServer, MalformedLineGetsStructuredErrorAndConnectionSurvives) {
  Fixture f;
  f.start();
  ExploreClient client(f.clientOptions());
  ASSERT_TRUE(client.start());
  ASSERT_TRUE(client.sendLine("{\"rows\": \"8\", \"workload\": \"gemm\"}"));
  auto line = client.readLine();
  ASSERT_TRUE(line.has_value());
  // The jsonl kind check rejects the string-typed number, with the
  // offending text in the message, and the connection keeps working.
  EXPECT_NE(line->find("\"error\""), std::string::npos) << *line;
  EXPECT_NE(line->find("string"), std::string::npos) << *line;
  const auto response = client.request(kQueries[0]);
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"frontier\""), std::string::npos);
  EXPECT_EQ(f.server->stats().parseErrors, 1u);
}

}  // namespace
}  // namespace tensorlib::driver
