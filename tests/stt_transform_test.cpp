// Tests for LoopSelection and SpaceTimeTransform, anchored on the worked
// example in Fig. 1(b) of the paper.
#include "stt/transform.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::stt {
namespace {

using tensor::workloads::conv2d;
using tensor::workloads::gemm;

TEST(LoopSelection, LabelFromInitials) {
  const auto g = gemm(8, 8, 8);
  const LoopSelection sel(g, {0, 1, 2});
  EXPECT_EQ(sel.label(), "MNK");
  EXPECT_EQ(sel.extents(), (linalg::IntVector{8, 8, 8}));
  EXPECT_TRUE(sel.outerIndices().empty());
}

TEST(LoopSelection, ByNamesAndOuterLoops) {
  const auto c = conv2d(4, 4, 6, 6, 3, 3);
  const auto sel = LoopSelection::byNames(c, {"x", "p", "q"});
  EXPECT_EQ(sel.label(), "XPQ");
  EXPECT_EQ(sel.extents(), (linalg::IntVector{6, 3, 3}));
  // outer loops: k, c, y
  EXPECT_EQ(sel.outerIndices(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(LoopSelection, RejectsDuplicatesAndBadCounts) {
  const auto g = gemm(4, 4, 4);
  EXPECT_THROW(LoopSelection(g, {0, 0, 1}), Error);
  EXPECT_THROW(LoopSelection(g, {0, 1}), Error);
  EXPECT_THROW(LoopSelection(g, {0, 1, 7}), Error);
}

TEST(SpaceTimeTransform, PaperFig1bExample) {
  // T = [1 0 0; 0 1 0; 1 1 1], x = (1,2,3) -> (1,2,6):
  // A[1,3] x B[3,2] executes at PE (1,2) on cycle 6.
  SpaceTimeTransform t(linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}});
  EXPECT_EQ(t.apply({1, 2, 3}), (linalg::IntVector{1, 2, 6}));
  EXPECT_TRUE(t.isUnimodular());
  EXPECT_EQ(t.det(), 1);
}

TEST(SpaceTimeTransform, InverseRoundTrip) {
  SpaceTimeTransform t(linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}});
  const auto back = t.invert({1, 2, 6});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, (linalg::IntVector{1, 2, 3}));
}

TEST(SpaceTimeTransform, SingularRejected) {
  EXPECT_THROW(
      SpaceTimeTransform(linalg::IntMatrix{{1, 0, 0}, {1, 0, 0}, {0, 0, 1}}),
      Error);
}

TEST(SpaceTimeTransform, NonUnimodularLeavesHoles) {
  // det = 2: half the integer space-time points have no preimage.
  SpaceTimeTransform t(linalg::IntMatrix{{2, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  EXPECT_FALSE(t.isUnimodular());
  EXPECT_TRUE(t.invert({2, 0, 0}).has_value());
  EXPECT_FALSE(t.invert({1, 0, 0}).has_value());
}

TEST(SpaceTimeTransform, RowAccessors) {
  SpaceTimeTransform t(linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}});
  EXPECT_EQ(t.spaceRow(0), (linalg::IntVector{1, 0, 0}));
  EXPECT_EQ(t.timeRow(), (linalg::IntVector{1, 1, 1}));
}

// Property: for unimodular T, apply/invert are mutually inverse on a grid.
class TransformRoundTripTest
    : public ::testing::TestWithParam<std::array<std::int64_t, 9>> {};

TEST_P(TransformRoundTripTest, BijectiveOnLattice) {
  const auto& e = GetParam();
  linalg::IntMatrix m(3, 3);
  for (std::size_t i = 0; i < 9; ++i) m.at(i / 3, i % 3) = e[i];
  SpaceTimeTransform t(m);
  ASSERT_TRUE(t.isUnimodular());
  for (std::int64_t i = -2; i <= 2; ++i)
    for (std::int64_t j = -2; j <= 2; ++j)
      for (std::int64_t k = -2; k <= 2; ++k) {
        const linalg::IntVector x{i, j, k};
        const auto back = t.invert(t.apply(x));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, x);
      }
}

INSTANTIATE_TEST_SUITE_P(
    UnimodularSamples, TransformRoundTripTest,
    ::testing::Values(std::array<std::int64_t, 9>{1, 0, 0, 0, 1, 0, 0, 0, 1},
                      std::array<std::int64_t, 9>{1, 0, 0, 0, 1, 0, 1, 1, 1},
                      std::array<std::int64_t, 9>{0, 1, 0, 0, 0, 1, 1, 0, 0},
                      std::array<std::int64_t, 9>{1, 1, 0, 0, 1, 0, 0, 1, 1},
                      std::array<std::int64_t, 9>{1, 0, 0, 1, 1, 0, 1, 1, 1},
                      std::array<std::int64_t, 9>{0, 1, 1, 1, 0, 1, 1, 1, 1}));

}  // namespace
}  // namespace tensorlib::stt
