// Regression tests pinning the PR 1 edge-case fixes:
//  - SimResult::utilization must stay finite when the cycle count degenerates
//    (the seed code divided into NaN).
//  - TileTraceCache must stay exact across differing tile origins and
//    boundary (truncated) tile shapes.
//  - The process-wide enumeration memo must be invalidated by every
//    EnumerationOptions field it is keyed on — a stale hit across options
//    would silently change the enumerated design space.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/dfsim.hpp"
#include "sim/trace.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib {
namespace {

namespace wl = tensor::workloads;

// --- utilization with degenerate cycle counts ------------------------------

TEST(UtilizationRegression, ServeCyclesOnEmptyProfileIsZero) {
  EXPECT_EQ(sim::serveCycles({}, 8.0), 0);
}

TEST(UtilizationRegression, SingletonWorkloadStaysFinite) {
  // gemm(1,1,1): one MAC, the smallest schedulable domain. The seed code's
  // utilization could divide by zero cycles on degenerate results.
  const auto g = wl::gemm(1, 1, 1);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  ASSERT_TRUE(spec.has_value());
  const auto env = tensor::makeRandomInputs(g, 3);
  const sim::SimResult r = sim::simulate(*spec, stt::ArrayConfig{}, &env);
  EXPECT_TRUE(std::isfinite(r.utilization));
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_EQ(r.macs, 1);
  const auto golden = tensor::referenceExecute(g, env);
  EXPECT_EQ(r.output.maxAbsDiff(golden), 0.0);
}

// --- trace cache across differing tile origins / boundary shapes -----------

TEST(TraceCacheRegression, BoundaryTilesWithMixedShapesAndOrigins) {
  // extent 5 on a 3x3 array: interior 3-tiles and truncated 2-tiles mix, so
  // materialize() must shift element indices correctly for every
  // (shape, origin) combination, not just the uniform interior case.
  const auto g = wl::gemm(5, 5, 5);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  ASSERT_TRUE(spec.has_value());
  sim::TileTraceCache cache(*spec);
  const std::size_t loops = g.loopCount();
  for (const linalg::IntVector shape :
       {linalg::IntVector{3, 3, 3}, linalg::IntVector{2, 3, 3},
        linalg::IntVector{3, 2, 2}, linalg::IntVector{2, 2, 2}}) {
    for (const linalg::IntVector origin :
         {linalg::IntVector{0, 0, 0}, linalg::IntVector{3, 0, 0},
          linalg::IntVector{0, 3, 3}, linalg::IntVector{3, 3, 0}}) {
      const linalg::IntVector outer(loops, 0);
      const auto materialized = cache.materialize(shape, origin, outer);
      const auto rebuilt = sim::buildTileTrace(*spec, shape, origin, outer);
      ASSERT_EQ(materialized.injections.size(), rebuilt.injections.size());
      for (std::size_t i = 0; i < rebuilt.injections.size(); ++i) {
        EXPECT_EQ(materialized.injections[i].element,
                  rebuilt.injections[i].element);
        EXPECT_EQ(materialized.injections[i].cycle, rebuilt.injections[i].cycle);
      }
      ASSERT_EQ(materialized.outputs.size(), rebuilt.outputs.size());
      for (std::size_t i = 0; i < rebuilt.outputs.size(); ++i)
        EXPECT_EQ(materialized.outputs[i].element, rebuilt.outputs[i].element);
    }
  }
}

TEST(TraceCacheRegression, SimulateAgreesAcrossTracePathsOnBoundaryTiles) {
  const auto g = wl::gemm(5, 5, 5);
  const stt::ArrayConfig config{3, 3, 320.0, 32.0, 2};
  const auto env = tensor::makeRandomInputs(g, 11);
  const auto golden = tensor::referenceExecute(g, env);
  for (const char* label : {"MNK-SST", "MNK-MTM"}) {
    const auto spec = stt::findDataflowByLabel(g, label);
    ASSERT_TRUE(spec.has_value()) << label;
    sim::SimOptions memo;
    sim::SimOptions rebuild;
    rebuild.reuseTraces = false;
    const auto a = sim::simulate(*spec, config, &env, memo);
    const auto b = sim::simulate(*spec, config, &env, rebuild);
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.tensorTrafficWords, b.tensorTrafficWords) << label;
    EXPECT_EQ(a.output.maxAbsDiff(golden), 0.0) << label;
    EXPECT_EQ(b.output.maxAbsDiff(golden), 0.0) << label;
  }
}

// --- enumeration memo invalidation across option changes -------------------

std::string fingerprint(const std::vector<stt::DataflowSpec>& specs) {
  std::string out;
  for (const auto& s : specs) {
    out += s.label();
    const auto& m = s.transform().matrix();
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j)
        out += std::to_string(m.at(i, j)) + ',';
    out += ';';
  }
  return out;
}

TEST(EnumerationMemoRegression, ChangingOptionsDoesNotServeStaleCandidates) {
  const auto g = wl::gemm(4, 4, 4);
  const stt::LoopSelection sel(g, {0, 1, 2});

  stt::EnumerationOptions e1;  // maxEntry=1, cached
  stt::EnumerationOptions e2 = e1;
  e2.maxEntry = 2;
  const auto first = stt::enumerateTransforms(g, sel, e1);   // warm e1 cache
  const auto wider = stt::enumerateTransforms(g, sel, e2);   // different key
  const auto again = stt::enumerateTransforms(g, sel, e1);   // e1 cache hit

  EXPECT_EQ(fingerprint(first), fingerprint(again));
  EXPECT_GT(wider.size(), first.size())
      << "maxEntry=2 must enumerate a strictly larger space";
  EXPECT_NE(fingerprint(wider), fingerprint(first));

  stt::EnumerationOptions nonUni = e1;
  nonUni.requireUnimodular = false;
  const auto nonUnimodular = stt::enumerateTransforms(g, sel, nonUni);
  EXPECT_GE(nonUnimodular.size(), first.size());
  // And e1 results remain byte-stable after every other key was exercised.
  EXPECT_EQ(fingerprint(stt::enumerateTransforms(g, sel, e1)),
            fingerprint(first));
}

TEST(EnumerationMemoRegression, CacheDisabledMatchesCacheEnabled) {
  const auto g = wl::gemm(4, 4, 4);
  const stt::LoopSelection sel(g, {0, 1, 2});
  stt::EnumerationOptions cached;
  stt::EnumerationOptions uncached;
  uncached.cacheCandidates = false;
  EXPECT_EQ(fingerprint(stt::enumerateTransforms(g, sel, cached)),
            fingerprint(stt::enumerateTransforms(g, sel, uncached)));
}

}  // namespace
}  // namespace tensorlib
