// Tests for driver::ExploreClient's transport discipline, using /bin/sh
// stand-in servers so the failure modes are scripted exactly: the partial
// final line a dying server leaves behind must be surfaced to the caller
// (not silently discarded) and must never be mistaken for a response.
#include "driver/explore_client.hpp"

#include <gtest/gtest.h>

namespace tensorlib::driver {
namespace {

TEST(ExploreClient, SurfacesPartialFinalLineAtEof) {
  ClientOptions options;
  options.command = {"/bin/sh", "-c", "printf 'whole line\\npartial tail'"};
  options.autoRestart = false;
  ExploreClient client(options);
  ASSERT_TRUE(client.start());

  auto line = client.readLine();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "whole line");
  EXPECT_TRUE(client.lastLineComplete());

  // The child died mid-write: the fragment comes back (it is often the
  // best diagnostic there is) but flagged incomplete.
  line = client.readLine();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "partial tail");
  EXPECT_FALSE(client.lastLineComplete());
  EXPECT_EQ(client.stats().partialLines, 1u);

  EXPECT_FALSE(client.readLine().has_value());
}

TEST(ExploreClient, RequestNeverAcceptsTruncatedResponse) {
  ClientOptions options;
  // Every (re)spawn reads one request and dies mid-response.
  options.command = {"/bin/sh", "-c",
                     R"(read line; printf '{"query": 0, "trunca')"};
  options.maxAttempts = 3;
  options.initialBackoffMs = 1;
  ExploreClient client(options);

  EXPECT_FALSE(client.request(R"({"workload": "gemm"})").has_value());
  // Every attempt saw the truncation; none was counted as answered.
  EXPECT_GE(client.stats().partialLines, 2u);
  EXPECT_EQ(client.stats().requests, 0u);
  EXPECT_GE(client.stats().restarts, 1u);
}

TEST(ExploreClient, CompleteResponsesStillFlowNormally) {
  ClientOptions options;
  options.command = {"/bin/sh", "-c", R"(read line; printf '{"ok": true}\n')"};
  ExploreClient client(options);
  const auto response = client.request(R"({"workload": "gemm"})");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, R"({"ok": true})");
  EXPECT_TRUE(client.lastLineComplete());
  EXPECT_EQ(client.stats().requests, 1u);
  EXPECT_EQ(client.stats().partialLines, 0u);
}

TEST(ExploreClient, NoAutoRestartStopsAfterFirstDeath) {
  ClientOptions options;
  options.command = {"/bin/sh", "-c", "exit 0"};  // dies immediately
  options.autoRestart = false;
  options.maxAttempts = 5;
  ExploreClient client(options);
  EXPECT_FALSE(client.request(R"({"workload": "gemm"})").has_value());
  EXPECT_EQ(client.stats().restarts, 0u);
}

}  // namespace
}  // namespace tensorlib::driver
