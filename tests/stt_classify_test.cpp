// Table-I classification tests: every dataflow class, anchored on the
// paper's examples (Fig. 1(b) systolic direction, known GEMM dataflow
// names, Batched-GEMV's forced unicast, Conv2D/MTTKRP/TTMc letters).
#include "stt/classify.hpp"

#include <gtest/gtest.h>

#include "stt/spec.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::stt {
namespace {

namespace wl = tensor::workloads;

SpaceTimeTransform makeT(std::initializer_list<std::initializer_list<std::int64_t>> m) {
  return SpaceTimeTransform(linalg::IntMatrix(m));
}

DataflowSpec analyzeGemm(const SpaceTimeTransform& t) {
  const auto g = wl::gemm(8, 8, 8);
  return analyzeDataflow(g, LoopSelection(g, {0, 1, 2}), t);
}

TEST(Classify, PaperFig1bTensorAIsSystolic) {
  // Paper Section IV: for T=[1 0 0;0 1 0;1 1 1], tensor A of GEMM uses the
  // systolic dataflow with direction (0,1,1).
  const auto spec = analyzeGemm(makeT({{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}));
  const auto& a = spec.tensors()[0];
  EXPECT_EQ(a.tensor, "A");
  EXPECT_EQ(a.dataflow.dataflowClass, DataflowClass::Systolic);
  EXPECT_EQ(a.dataflow.direction, (linalg::IntVector{0, 1, 1}));
}

TEST(Classify, Fig1bFullLabelIsSST) {
  // A systolic, B systolic, C stationary: the classic output-stationary
  // systolic array (paper: KCX-SST / MNK-SST is "well-known output
  // stationary").
  const auto spec = analyzeGemm(makeT({{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}));
  EXPECT_EQ(spec.label(), "MNK-SST");
  EXPECT_EQ(spec.outputRole().dataflow.dataflowClass, DataflowClass::Stationary);
}

TEST(Classify, IdentityTransformIsMMT) {
  // p=(m,n), t=k: both inputs multicast along rows/columns, output
  // stationary with accumulation over k.
  const auto spec = analyzeGemm(makeT({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}));
  EXPECT_EQ(spec.label(), "MNK-MMT");
  const auto& a = spec.tensors()[0];
  EXPECT_EQ(a.dataflow.direction, (linalg::IntVector{0, 1, 0}));
  const auto& c = spec.tensors()[2];
  EXPECT_EQ(c.dataflow.direction, (linalg::IntVector{0, 0, 1}));
}

TEST(Classify, WeightStationaryIsSTS) {
  // B[n,k]'s reuse direction e_m maps to (0,0,1): the weight is stationary;
  // A and the output C flow systolically.
  const auto spec = analyzeGemm(makeT({{0, 1, 0}, {0, 0, 1}, {1, 1, 1}}));
  EXPECT_EQ(spec.letters(), "STS");
  EXPECT_EQ(spec.tensors()[1].dataflow.dataflowClass, DataflowClass::Stationary);
}

TEST(Classify, ReductionTreeOutput) {
  // Space rows (m, k), time n: C reuse dir e_k maps to (0,1,0): output
  // multicast = reduction tree.
  const auto spec = analyzeGemm(makeT({{1, 0, 0}, {0, 0, 1}, {0, 1, 0}}));
  EXPECT_EQ(spec.outputRole().dataflow.dataflowClass, DataflowClass::Multicast);
  EXPECT_EQ(spec.letters()[2], 'M');
}

TEST(Classify, BatchedGemvTensorAIsAlwaysUnicast) {
  // Paper Section VI-A: "Batched-GEMV can only use unicast dataflow because
  // the tensor A is only accessed once".
  const auto bg = wl::batchedGemv(8, 8, 8);
  const LoopSelection sel(bg, {0, 1, 2});
  for (const auto& t :
       {makeT({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}),
        makeT({{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}),
        makeT({{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})}) {
    const auto spec = analyzeDataflow(bg, sel, t);
    EXPECT_EQ(spec.tensors()[0].dataflow.dataflowClass, DataflowClass::Unicast)
        << spec.describe();
  }
}

TEST(Classify, ConvKxySelectionGivesBroadcastWeight) {
  // Conv2D with selection (k,x,y): B[k,c,p,q] depends only on k among the
  // selected loops => rank-2 reuse. A depends on x and y => rank 1.
  // C[k,y,x] depends on all three => unicast.
  const auto c = wl::conv2d(8, 8, 8, 8, 3, 3);
  const auto sel = LoopSelection::byNames(c, {"k", "x", "y"});
  const auto spec =
      analyzeDataflow(c, sel, makeT({{1, 0, 0}, {0, 1, 0}, {0, 1, 1}}));
  EXPECT_EQ(spec.tensors()[1].dataflow.reuseRank, 2u);
  EXPECT_EQ(dataflowLetter(spec.tensors()[1].dataflow.dataflowClass), 'B');
  EXPECT_EQ(spec.tensors()[2].dataflow.dataflowClass, DataflowClass::Unicast);
}

TEST(Classify, Rank2ClassesUnderIdentity) {
  // TTMc selection (i,j,k) with identity T. C[m,k] depends on no selected
  // loop but k: reuse plane (e_i, e_j) stays purely spatial -> Broadcast.
  // A[i,l,m] and B[l,j] get planes containing the time axis -> multicast &
  // stationary. D touches all three loops -> unicast.
  const auto tt = wl::ttmc(4, 4, 4, 4, 4);
  const auto sel = LoopSelection::byNames(tt, {"i", "j", "k"});
  const auto spec =
      analyzeDataflow(tt, sel, makeT({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}));
  EXPECT_EQ(spec.tensors()[0].dataflow.dataflowClass,
            DataflowClass::MulticastStationary);
  EXPECT_EQ(spec.tensors()[1].dataflow.dataflowClass,
            DataflowClass::MulticastStationary);
  EXPECT_EQ(spec.tensors()[2].dataflow.dataflowClass, DataflowClass::Broadcast2D);
  EXPECT_EQ(spec.label(), "IJK-BBBU");
}

TEST(Classify, Rank2SystolicMulticastOblique) {
  // Skewed time row t=i+j+k: C[m,k]'s reuse plane (e_i, e_j) maps to
  // span{(1,0,1),(0,1,1)}, which intersects the t-axis obliquely.
  const auto tt = wl::ttmc(4, 4, 4, 4, 4);
  const auto sel = LoopSelection::byNames(tt, {"i", "j", "k"});
  const auto spec =
      analyzeDataflow(tt, sel, makeT({{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}));
  EXPECT_EQ(spec.tensors()[2].dataflow.dataflowClass,
            DataflowClass::SystolicMulticast);
}

TEST(Classify, MttkrpUnicastHeavySelection) {
  // Paper Fig. 5(d): IKL-UBBB — selecting (i,k,l) makes A[i,k,l] unicast
  // and gives every other tensor 2-D reuse.
  const auto mt = wl::mttkrp(8, 8, 8, 8);
  const auto sel = LoopSelection::byNames(mt, {"i", "k", "l"});
  const auto spec =
      analyzeDataflow(mt, sel, makeT({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}));
  EXPECT_EQ(spec.label(), "IKL-UBBB");
}

TEST(Classify, LettersForEveryClass) {
  EXPECT_EQ(dataflowLetter(DataflowClass::Unicast), 'U');
  EXPECT_EQ(dataflowLetter(DataflowClass::Stationary), 'T');
  EXPECT_EQ(dataflowLetter(DataflowClass::Systolic), 'S');
  EXPECT_EQ(dataflowLetter(DataflowClass::Multicast), 'M');
  EXPECT_EQ(dataflowLetter(DataflowClass::Broadcast2D), 'B');
  EXPECT_EQ(dataflowLetter(DataflowClass::MulticastStationary), 'B');
  EXPECT_EQ(dataflowLetter(DataflowClass::SystolicMulticast), 'B');
  EXPECT_EQ(dataflowLetter(DataflowClass::FullReuse), 'B');
}

TEST(Classify, ClassNamesAreStable) {
  EXPECT_EQ(dataflowClassName(DataflowClass::MulticastStationary),
            "Multicast & Stationary");
  EXPECT_EQ(dataflowClassName(DataflowClass::Systolic), "Systolic");
}

TEST(Classify, HelperPredicates) {
  const auto spec = analyzeGemm(makeT({{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}));
  EXPECT_TRUE(spec.tensors()[0].dataflow.isSystolicLike());
  EXPECT_TRUE(spec.tensors()[2].dataflow.hasStationaryComponent());
  EXPECT_FALSE(spec.tensors()[0].dataflow.hasMulticastComponent());
}

TEST(Classify, SignatureDistinguishesDirections) {
  const auto s1 = analyzeGemm(makeT({{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}));
  const auto s2 = analyzeGemm(makeT({{1, 0, 0}, {0, 1, 0}, {1, -1, 1}}));
  EXPECT_NE(s1.signature(), s2.signature());
}

}  // namespace
}  // namespace tensorlib::stt
