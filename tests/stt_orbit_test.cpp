// Orbit-quotient soundness of the direct canonical enumeration engine: the
// candidate list must contain EXACTLY one representative per orbit of the
// 16-element STT symmetry group (row sign flips x space-row swap), no more
// (fixed-point + closure) and no fewer (orbit-count accounting against the
// brute-force full-cube count). Together with the legacy-engine list
// equality at maxEntry <= 2, the accounting at maxEntry = 3 proves the
// direct engine covers the whole cube without ever decoding it: the legacy
// engine is, by construction, "canonicalize + dedupe the full cube", and a
// closed fixed-point set whose orbit sizes sum to the cube count is that
// quotient.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "linalg/solve.hpp"
#include "stt/enumerate.hpp"

namespace tensorlib::stt {
namespace {

EnumerationOptions canonicalOptions(int maxEntry) {
  EnumerationOptions o;
  o.maxEntry = maxEntry;
  return o;
}

/// Brute-force count of 3x3 matrices with entries in [-e, e] and |det| == 1
/// — the unimodular full cube the quotient must account for exactly.
std::uint64_t bruteForceUnimodularCount(int e) {
  std::uint64_t count = 0;
  const std::int64_t lo = -e, hi = e;
  std::int64_t m[9];
  for (m[0] = lo; m[0] <= hi; ++m[0])
    for (m[1] = lo; m[1] <= hi; ++m[1])
      for (m[2] = lo; m[2] <= hi; ++m[2])
        for (m[3] = lo; m[3] <= hi; ++m[3])
          for (m[4] = lo; m[4] <= hi; ++m[4])
            for (m[5] = lo; m[5] <= hi; ++m[5]) {
              // Cofactors of the third row are fixed here; hoist them.
              const std::int64_t c0 = m[1] * m[5] - m[2] * m[4];
              const std::int64_t c1 = m[0] * m[5] - m[2] * m[3];
              const std::int64_t c2 = m[0] * m[4] - m[1] * m[3];
              for (m[6] = lo; m[6] <= hi; ++m[6])
                for (m[7] = lo; m[7] <= hi; ++m[7])
                  for (m[8] = lo; m[8] <= hi; ++m[8]) {
                    const std::int64_t det =
                        m[6] * c0 - m[7] * c1 + m[8] * c2;
                    if (det == 1 || det == -1) ++count;
                  }
            }
  return count;
}

TEST(OrbitQuotient, CanonicalRepresentativesAreFixedPoints) {
  for (int e = 1; e <= 3; ++e) {
    const auto mats = candidateTransformMatrices(canonicalOptions(e));
    ASSERT_FALSE(mats->empty());
    for (const linalg::IntMatrix& m : *mats)
      EXPECT_EQ(canonicalTransform(m).str(), m.str())
          << "non-canonical representative at maxEntry=" << e;
  }
}

TEST(OrbitQuotient, GroupClosure) {
  // Every symmetry applied to every representative lands back on a matrix
  // whose canonical form is an enumerated representative — in fact the
  // same one (orbits are equivalence classes).
  for (int e = 1; e <= 2; ++e) {
    const auto mats = candidateTransformMatrices(canonicalOptions(e));
    std::set<std::string> enumerated;
    for (const linalg::IntMatrix& m : *mats) enumerated.insert(m.str());
    EXPECT_EQ(enumerated.size(), mats->size()) << "duplicate representative";
    for (const linalg::IntMatrix& m : *mats) {
      for (const linalg::IntMatrix& g : symmetryOrbit(m)) {
        const std::int64_t det = linalg::determinant(g);
        EXPECT_TRUE(det == 1 || det == -1) << "symmetry broke unimodularity";
        const linalg::IntMatrix canon = canonicalTransform(g);
        EXPECT_EQ(canon.str(), m.str()) << "orbit element of " << m.str()
                                        << " canonicalized elsewhere";
        EXPECT_EQ(enumerated.count(canon.str()), 1u);
      }
    }
  }
}

TEST(OrbitQuotient, OrbitCountAccountingMaxEntry2) {
  const auto mats = candidateTransformMatrices(canonicalOptions(2));
  std::uint64_t orbitSum = 0;
  for (const linalg::IntMatrix& m : *mats) orbitSum += symmetryOrbit(m).size();
  EXPECT_EQ(orbitSum, bruteForceUnimodularCount(2));
}

TEST(OrbitQuotient, OrbitCountAccountingMaxEntry3) {
  // The maxEntry=3 exhaustiveness proof: summed orbit sizes over the
  // representatives recover the full 7^9-cube unimodular count, so the
  // quotient is neither over- nor under-counting (see file comment).
  const auto mats = candidateTransformMatrices(canonicalOptions(3));
  std::uint64_t orbitSum = 0;
  std::set<std::string> seen;  // reps must be pairwise distinct too
  for (const linalg::IntMatrix& m : *mats) {
    orbitSum += symmetryOrbit(m).size();
    seen.insert(m.str());
  }
  EXPECT_EQ(seen.size(), mats->size());
  EXPECT_EQ(orbitSum, bruteForceUnimodularCount(3));
}

TEST(OrbitQuotient, DirectEngineMatchesLegacyExhaustive) {
  // Exhaustive differential at maxEntry <= 2: the direct engine's list is
  // element-for-element identical (same order) to the legacy
  // decode-everything engine's.
  for (int e = 1; e <= 2; ++e) {
    EnumerationOptions direct = canonicalOptions(e);
    EnumerationOptions legacy = canonicalOptions(e);
    legacy.useLegacyEnumeration = true;
    const auto a = candidateTransformMatrices(direct);
    const auto b = candidateTransformMatrices(legacy);
    ASSERT_EQ(a->size(), b->size()) << "maxEntry=" << e;
    for (std::size_t i = 0; i < a->size(); ++i)
      ASSERT_EQ((*a)[i].str(), (*b)[i].str()) << "maxEntry=" << e << " i=" << i;
  }
}

TEST(OrbitQuotient, OrbitSizesDivideGroupOrder) {
  // Orbit-stabilizer sanity: every orbit size divides 16; unimodular
  // matrices have trivial stabilizers under this group (no zero rows, no
  // +/- equal space rows), so orbits are in fact full size.
  const auto mats = candidateTransformMatrices(canonicalOptions(2));
  for (const linalg::IntMatrix& m : *mats) {
    const std::size_t size = symmetryOrbit(m).size();
    EXPECT_EQ(16u % size, 0u);
    EXPECT_EQ(size, 16u) << m.str();
  }
}

}  // namespace
}  // namespace tensorlib::stt
