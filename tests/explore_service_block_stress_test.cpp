// Block-pipeline stress (runs under TSan via the service-stress label):
// repeated mixed batches — both backends, duplicate queries, a
// deadline-bounded query — through the struct-of-arrays path at 8 workers
// must stay bit-identical run to run and match the scalar pipeline, while
// every query keeps exact cache-bucket accounting. Concurrent submit()
// traffic shares the same caches without racing the batch path.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "cost/backend.hpp"
#include "driver/explore_service.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;

ServiceOptions stressOptions(std::size_t threads, std::size_t blockSpecs) {
  ServiceOptions o;
  o.threads = threads;
  o.workUnitSpecs = 32;
  o.blockSpecs = blockSpecs;
  return o;
}

ExploreQuery query(tensor::TensorAlgebra algebra, cost::BackendKind backend) {
  ExploreQuery q(std::move(algebra));
  q.array.rows = q.array.cols = 4;
  q.backend = backend;
  return q;
}

void expectSameResult(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.designs, b.designs);
  ASSERT_EQ(a.frontier.size(), b.frontier.size());
  for (std::size_t i = 0; i < a.frontier.size(); ++i) {
    EXPECT_EQ(a.frontier[i].spec.label(), b.frontier[i].spec.label());
    EXPECT_EQ(a.frontier[i].perf.totalCycles, b.frontier[i].perf.totalCycles);
    EXPECT_EQ(a.frontier[i].figures().powerMw, b.frontier[i].figures().powerMw);
    EXPECT_EQ(a.frontier[i].figures().area, b.frontier[i].figures().area);
  }
}

void expectExactAccounting(const QueryResult& r) {
  EXPECT_EQ(r.cache.hits + r.cache.misses + r.cache.pruned + r.cache.skipped,
            r.designs);
}

std::vector<ExploreQuery> mixedBatch() {
  std::vector<ExploreQuery> batch;
  batch.push_back(query(wl::gemm(6, 6, 6), cost::BackendKind::Asic));
  batch.push_back(query(wl::gemm(6, 6, 6), cost::BackendKind::Fpga));
  batch.push_back(query(wl::gemm(6, 6, 6), cost::BackendKind::Asic));  // dup
  batch.push_back(query(wl::attention(6, 6, 6), cost::BackendKind::Asic));
  ExploreQuery bounded = query(wl::attention(6, 6, 6), cost::BackendKind::Fpga);
  bounded.deadlineMs = 60'000;  // armed but generous: exercises the checks
  batch.push_back(bounded);
  return batch;
}

TEST(BlockStress, RepeatedMixedBatchesStayBitIdentical) {
  const auto batch = mixedBatch();

  ExplorationService scalar(stressOptions(1, 0));
  const auto reference = scalar.runBatch(batch);

  for (int round = 0; round < 3; ++round) {
    ExplorationService block(stressOptions(8, 16));
    const auto results = block.runBatch(batch);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE("round " + std::to_string(round) + " query " +
                   std::to_string(i));
      EXPECT_FALSE(results[i].timedOut);
      expectSameResult(reference[i], results[i]);
      expectExactAccounting(results[i]);
    }
  }
}

TEST(BlockStress, WarmRepeatOnOneServiceStaysBitIdentical) {
  const auto batch = mixedBatch();
  ExplorationService block(stressOptions(8, 16));
  const auto cold = block.runBatch(batch);
  const auto warm = block.runBatch(batch);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    expectSameResult(cold[i], warm[i]);
    expectExactAccounting(warm[i]);
  }
}

TEST(BlockStress, ConcurrentSubmitsShareCachesSafely) {
  ExplorationService scalar(stressOptions(1, 0));
  ExplorationService block(stressOptions(8, 16));

  std::vector<ExploreQuery> queries;
  queries.push_back(query(wl::gemm(5, 5, 5), cost::BackendKind::Asic));
  queries.push_back(query(wl::gemm(5, 5, 5), cost::BackendKind::Fpga));
  queries.push_back(query(wl::attention(5, 5, 5), cost::BackendKind::Asic));
  queries.push_back(query(wl::gemm(5, 5, 5), cost::BackendKind::Asic));

  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(block.submit(q));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const QueryResult result = futures[i].get();
    expectSameResult(scalar.run(queries[i]), result);
    expectExactAccounting(result);
  }
}

}  // namespace
}  // namespace tensorlib::driver
