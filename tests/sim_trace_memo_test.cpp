// Tile-trace memoization tests: the TileTraceCache must reproduce
// buildTileTrace exactly — base traces per shape, materialized traces at
// arbitrary (origin, outerFixed) projections — and simulate() must return
// identical results with trace reuse on and off.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/dfsim.hpp"
#include "stt/enumerate.hpp"
#include "tensor/reference.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::sim {
namespace {

namespace wl = tensor::workloads;

void expectTracesEqual(const TileTrace& a, const TileTrace& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.p1Span, b.p1Span);
  EXPECT_EQ(a.p2Span, b.p2Span);
  ASSERT_EQ(a.active.size(), b.active.size());
  for (std::size_t i = 0; i < a.active.size(); ++i) {
    EXPECT_EQ(a.active[i].iteration, b.active[i].iteration);
    EXPECT_EQ(a.active[i].p1, b.active[i].p1);
    EXPECT_EQ(a.active[i].p2, b.active[i].p2);
    EXPECT_EQ(a.active[i].t, b.active[i].t);
  }
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    EXPECT_EQ(a.injections[i].tensorIndex, b.injections[i].tensorIndex);
    EXPECT_EQ(a.injections[i].element, b.injections[i].element);
    EXPECT_EQ(a.injections[i].cycle, b.injections[i].cycle);
    EXPECT_EQ(a.injections[i].p1, b.injections[i].p1);
    EXPECT_EQ(a.injections[i].p2, b.injections[i].p2);
    EXPECT_EQ(a.injections[i].viaBus, b.injections[i].viaBus);
  }
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_EQ(a.outputs[i].element, b.outputs[i].element);
    EXPECT_EQ(a.outputs[i].cycle, b.outputs[i].cycle);
  }
  EXPECT_EQ(a.injectionWords, b.injectionWords);
  EXPECT_EQ(a.demandPerCycle, b.demandPerCycle);
}

stt::DataflowSpec namedSpec(const tensor::TensorAlgebra& algebra,
                            const std::string& label) {
  const auto spec = stt::findDataflowByLabel(algebra, label);
  EXPECT_TRUE(spec.has_value()) << label;
  return *spec;
}

TEST(TileTraceCache, BaseMatchesBuildTileTrace) {
  const auto g = wl::gemm(8, 8, 8);
  for (const std::string label : {"MNK-SST", "MNK-MTM", "MNK-MMT"}) {
    const auto spec = namedSpec(g, label);
    TileTraceCache cache(spec);
    for (const linalg::IntVector shape :
         {linalg::IntVector{4, 4, 4}, linalg::IntVector{3, 4, 2},
          linalg::IntVector{1, 2, 8}}) {
      expectTracesEqual(cache.base(shape), buildTileTrace(spec, shape));
      // Second lookup returns the identical cached object.
      EXPECT_EQ(&cache.base(shape), &cache.base(shape));
    }
  }
}

TEST(TileTraceCache, MaterializeMatchesRebuildAtShiftedOrigins) {
  const auto mt = wl::mttkrp(6, 6, 6, 6);
  const auto spec = namedSpec(mt, "IJK-SSBT");
  TileTraceCache cache(spec);
  const linalg::IntVector shape{3, 2, 3};
  const std::size_t loops = spec.algebra().loopCount();
  for (const linalg::IntVector origin :
       {linalg::IntVector{0, 0, 0}, linalg::IntVector{3, 2, 0},
        linalg::IntVector{0, 4, 3}}) {
    for (std::int64_t outerValue : {0, 1, 4}) {
      linalg::IntVector outer(loops, 0);
      outer[spec.selection().outerIndices().empty()
                ? 0
                : spec.selection().outerIndices()[0]] = outerValue;
      // Selected entries of outer are ignored (overwritten per point), so
      // the vector above is always a valid projection.
      expectTracesEqual(cache.materialize(shape, origin, outer),
                        buildTileTrace(spec, shape, origin, outer));
    }
  }
}

TEST(SimulateMemo, ReuseTracesMatchesRebuildPath) {
  const auto g = wl::gemm(12, 12, 12);
  const stt::ArrayConfig config{4, 4, 320.0, 32.0, 2};
  tensor::TensorEnv env = tensor::makeRandomInputs(g, 7);
  for (const std::string label : {"MNK-SST", "MNK-MTM"}) {
    const auto spec = namedSpec(g, label);
    SimOptions memo;  // reuseTraces = true (default)
    SimOptions rebuild;
    rebuild.reuseTraces = false;
    const SimResult a = simulate(spec, config, &env, memo);
    const SimResult b = simulate(spec, config, &env, rebuild);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.macs, b.macs);
    EXPECT_EQ(a.trafficWords, b.trafficWords);
    EXPECT_EQ(a.tensorTrafficWords, b.tensorTrafficWords);
    EXPECT_EQ(a.peakDemandWords, b.peakDemandWords);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
    ASSERT_TRUE(a.output.sameShape(b.output));
    EXPECT_EQ(a.output.maxAbsDiff(b.output), 0.0);
  }
}

TEST(SimulateMemo, UtilizationIsAlwaysFinite) {
  const auto g = wl::gemm(4, 4, 4);
  const auto spec = namedSpec(g, "MNK-SST");
  const SimResult r = simulate(spec, stt::ArrayConfig{}, nullptr,
                               SimOptions{/*functional=*/false});
  EXPECT_TRUE(std::isfinite(r.utilization));
  EXPECT_GT(r.utilization, 0.0);
}

}  // namespace
}  // namespace tensorlib::sim
