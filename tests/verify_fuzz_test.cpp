// Property-based conformance: 200 seeded random algebras through the
// four-engine differential oracle. Every generated design point must agree
// bit-for-bit across the dense reference, both behavioral trace paths and
// both RTL engines (where generable). A failure message carries the
// shrunken minimal algebra and the replay seed, so
//   conformance_runner --seeds 1 --seed-base <seed>
// reproduces it outside the test harness.
#include "verify/fuzz.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tensor/reference.hpp"
#include "verify/conformance.hpp"

namespace tensorlib::verify {
namespace {

TEST(VerifyFuzz, RandomAlgebrasAreValidAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto a = randomAlgebra(seed);
    const auto b = randomAlgebra(seed);
    EXPECT_EQ(describeAlgebra(a), describeAlgebra(b)) << "seed " << seed;
    EXPECT_GE(a.loopCount(), 3u);
    EXPECT_GE(a.inputs().size(), 1u);
    for (const auto& l : a.loops()) EXPECT_GE(l.extent, 1);
    // Valid by construction: the reference executor must accept it.
    const auto env = tensor::makeRandomInputs(a, seed);
    EXPECT_NO_THROW(tensor::referenceExecute(a, env));
  }
}

TEST(VerifyFuzz, TwoHundredSeedsConform) {
  ConformanceOptions options;
  // Keep all-unicast designs so no random algebra enumerates a vacuously
  // empty design space (ConformanceReport::pass() rejects those).
  options.enumeration.dropAllUnicast = false;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto algebra = randomAlgebra(seed);
    ConformanceReport report;
    try {
      report = checkAlgebra(algebra, options);
    } catch (const Error& e) {
      FAIL() << "pipeline error on fuzz seed " << seed << ": " << e.what()
             << "\n"
             << describeAlgebra(algebra);
    }
    if (report.pass()) continue;
    if (report.failures.empty()) {
      // Vacuous (empty design space): nothing to shrink against.
      FAIL() << "vacuous conformance sweep at fuzz seed " << seed << "\n"
             << report.summary() << "\n" << describeAlgebra(algebra);
    }

    const auto minimal =
        shrinkAlgebra(algebra, divergencePredicate(options));
    FAIL() << "conformance divergence at fuzz seed " << seed
           << "\nreplay: conformance_runner --seeds 1 --seed-base " << seed
           << "\n" << report.summary() << "\nshrunken failing algebra:\n"
           << describeAlgebra(minimal);
  }
}

TEST(VerifyFuzz, ShrinkerReachesAFixpointMinimum) {
  // Synthetic predicate: "fails" whenever the algebra still has >= 2 inputs.
  // The shrinker must reduce everything else to its floor while keeping the
  // predicate true: 2 inputs, the minimum 3 loops, all extents 1.
  FuzzOptions options;
  options.maxInputs = 3;
  std::uint64_t seed = 1;
  tensor::TensorAlgebra start = randomAlgebra(seed, options);
  while (start.inputs().size() < 2) start = randomAlgebra(++seed, options);
  const auto pred = [](const tensor::TensorAlgebra& a) {
    return a.inputs().size() >= 2;
  };
  ASSERT_TRUE(pred(start));
  const auto minimal = shrinkAlgebra(start, pred);
  EXPECT_EQ(minimal.inputs().size(), 2u);
  EXPECT_EQ(minimal.loopCount(), 3u);
  for (const auto& l : minimal.loops()) EXPECT_EQ(l.extent, 1);
  for (const auto& in : minimal.inputs())
    EXPECT_EQ(in.access.tensorRank(), 1u);
}

TEST(VerifyFuzz, ShrinkPreservesTheFailurePredicate) {
  // Predicate keyed to a structural feature deeper than input count: a
  // stride-2 coefficient somewhere. Shrinking must keep one.
  const auto hasStride = [](const tensor::TensorAlgebra& a) {
    for (const auto* ref : a.tensorsInLabelOrder()) {
      const auto& c = ref->access.coeff();
      for (std::size_t r = 0; r < c.rows(); ++r)
        for (std::size_t j = 0; j < c.cols(); ++j)
          if (c.at(r, j) >= 2) return true;
    }
    return false;
  };
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto a = randomAlgebra(seed);
    if (!hasStride(a)) continue;
    const auto minimal = shrinkAlgebra(a, hasStride);
    EXPECT_TRUE(hasStride(minimal)) << "seed " << seed;
    EXPECT_LE(minimal.totalMacs(), a.totalMacs()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tensorlib::verify
