// Tests for the emitted self-checking Verilog testbench: structure, port
// coverage, stimulus/check counts consistent with the schedule.
#include <gtest/gtest.h>

#include "arch/testbench.hpp"
#include "hwir/verilog.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::arch {
namespace {

namespace wl = tensor::workloads;

GeneratedAccelerator makeAcc(const std::string& label, std::int64_t pes) {
  const auto g = wl::gemm(pes, pes, pes);
  const auto spec = stt::findDataflowByLabel(g, label);
  EXPECT_TRUE(spec.has_value());
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = pes;
  return generateAccelerator(*spec, cfg);
}

std::size_t countOccurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(TbGen, EmitsSelfCheckingModule) {
  const auto acc = makeAcc("MNK-SST", 4);
  const auto g = wl::gemm(4, 4, 4);
  const auto env = tensor::makeRandomInputs(g, 3);
  const std::string tb = emitVerilogTestbench(acc, env);
  EXPECT_NE(tb.find("module tb_tensorlib_MNK_SST"), std::string::npos);
  EXPECT_NE(tb.find("always #5 clk = ~clk"), std::string::npos);
  EXPECT_NE(tb.find("TB PASS"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
}

TEST(TbGen, InstantiatesEveryPort) {
  const auto acc = makeAcc("MNK-MMT", 4);
  const auto g = wl::gemm(4, 4, 4);
  const auto env = tensor::makeRandomInputs(g, 5);
  const std::string tb = emitVerilogTestbench(acc, env);
  for (hwir::NodeId id : acc.netlist.inputs())
    EXPECT_NE(tb.find("." + acc.netlist.node(id).name + "("), std::string::npos)
        << acc.netlist.node(id).name;
  for (hwir::NodeId id : acc.netlist.outputs())
    EXPECT_NE(tb.find("." + acc.netlist.node(id).name + "("), std::string::npos)
        << acc.netlist.node(id).name;
}

TEST(TbGen, ChecksOnePerOutputElement) {
  const auto acc = makeAcc("MNK-SST", 4);
  const auto g = wl::gemm(4, 4, 4);
  const auto env = tensor::makeRandomInputs(g, 7);
  const std::string tb = emitVerilogTestbench(acc, env);
  // 16 output elements -> 16 mismatch checks.
  EXPECT_EQ(countOccurrences(tb, "MISMATCH"), 16u);
}

TEST(TbGen, PairsWithDesignModule) {
  // The TB instantiates the module name the Verilog backend emits.
  const auto acc = makeAcc("MNK-TSS", 4);
  const auto g = wl::gemm(4, 4, 4);
  const auto env = tensor::makeRandomInputs(g, 9);
  const std::string design = hwir::emitVerilog(acc.netlist);
  const std::string tb = emitVerilogTestbench(acc, env);
  EXPECT_NE(design.find("module " + acc.netlist.name() + " ("),
            std::string::npos);
  EXPECT_NE(tb.find(acc.netlist.name() + " dut ("), std::string::npos);
}

TEST(TbGen, StimulusCyclesCoverComputePhase) {
  const auto acc = makeAcc("MNK-SST", 4);
  const auto g = wl::gemm(4, 4, 4);
  const auto env = tensor::makeRandomInputs(g, 11);
  const std::string tb = emitVerilogTestbench(acc, env);
  // Comment markers for every cycle up to at least compute end.
  for (std::int64_t c = 0; c < acc.loadCycles + acc.computeCycles; ++c)
    EXPECT_NE(tb.find("// cycle " + std::to_string(c) + "\n"),
              std::string::npos)
        << c;
}

}  // namespace
}  // namespace tensorlib::arch
