// Block-path equivalence: the struct-of-arrays evaluation pipeline
// (ServiceOptions::blockSpecs > 0) must be invisible in every output. Three
// layers of evidence:
//
//   * Differential: block vs scalar frontiers (and winners) are bit-identical
//     across the full workload table x {ASIC, FPGA} backends x {1, 8} worker
//     threads x block sizes, warm or cold, and across mixed scalar/block
//     traffic sharing one evaluation cache.
//   * Packed-model unit checks: computeMappingPacked equals computeMapping
//     field for field, and CostBackend::lowerBoundBlock equals lowerBound
//     exactly (EXPECT_EQ on doubles), on every enumerated spec checked.
//   * Accounting: hits + misses + pruned + skipped == designs holds on the
//     block path too, including deadline-expired partial results where the
//     whole untouched remainder counts as skipped.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cost/backend.hpp"
#include "driver/explore_service.hpp"
#include "stt/block.hpp"
#include "stt/enumerate.hpp"
#include "stt/mapping.hpp"
#include "support/fault.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;

void expectSameReport(const DesignReport& a, const DesignReport& b) {
  EXPECT_EQ(a.spec.label(), b.spec.label());
  EXPECT_EQ(a.spec.transform().str(), b.spec.transform().str());
  EXPECT_EQ(a.perf.totalCycles, b.perf.totalCycles);
  EXPECT_EQ(a.perf.utilization, b.perf.utilization);
  EXPECT_EQ(a.backend, b.backend);
  const auto fa = a.figures(), fb = b.figures();
  EXPECT_EQ(fa.powerMw, fb.powerMw);
  EXPECT_EQ(fa.area, fb.area);
}

void expectSameResult(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.designs, b.designs);
  ASSERT_EQ(a.frontier.size(), b.frontier.size());
  for (std::size_t i = 0; i < a.frontier.size(); ++i)
    expectSameReport(a.frontier[i], b.frontier[i]);
  ASSERT_EQ(a.best.has_value(), b.best.has_value());
  if (a.best) expectSameReport(*a.best, *b.best);
}

ServiceOptions blockOptions(std::size_t threads, std::size_t blockSpecs) {
  ServiceOptions o;
  o.threads = threads;
  o.workUnitSpecs = 32;  // several units per query even on small spaces
  o.blockSpecs = blockSpecs;
  return o;
}

ExploreQuery workloadQuery(const wl::NamedWorkload& w,
                           cost::BackendKind backend) {
  ExploreQuery q(w.algebra);
  q.array.rows = q.array.cols = 4;
  q.backend = backend;
  q.enumeration.dropAllUnicast = !w.allowAllUnicast;
  return q;
}

void expectExactAccounting(const QueryResult& r) {
  EXPECT_EQ(r.cache.hits + r.cache.misses + r.cache.pruned + r.cache.skipped,
            r.designs);
}

/// Enumerates up to `cap` specs of the algebra the way the service does.
std::shared_ptr<const std::vector<stt::DataflowSpec>> enumerateSpecs(
    const tensor::TensorAlgebra& algebra, std::size_t cap,
    bool dropAllUnicast) {
  stt::EnumerationOptions enumeration;
  enumeration.dropAllUnicast = dropAllUnicast;
  auto specs = std::make_shared<std::vector<stt::DataflowSpec>>();
  for (const auto& sel : stt::allLoopSelections(algebra)) {
    if (specs->size() >= cap) break;
    for (auto& spec : stt::enumerateTransforms(algebra, sel, enumeration)) {
      specs->push_back(std::move(spec));
      if (specs->size() >= cap) break;
    }
  }
  return specs;
}

// --- the differential satellite ---------------------------------------------

TEST(BlockDifferential, FrontiersBitIdenticalToScalarAcrossTable) {
  for (const auto& w : wl::allWorkloads()) {
    for (const auto backend :
         {cost::BackendKind::Asic, cost::BackendKind::Fpga}) {
      const ExploreQuery q = workloadQuery(w, backend);

      // Scalar reference: blockSpecs = 0 keeps the per-candidate path.
      ExplorationService scalar(blockOptions(1, 0));
      const QueryResult reference = scalar.run(q);
      expectExactAccounting(reference);

      // Block sizes that exercise degenerate one-spec blocks, blocks that
      // straddle nothing (>= workUnitSpecs), and the bench-gated setting.
      for (const std::size_t blockSpecs : {std::size_t{1}, std::size_t{64}}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
          ExplorationService block(blockOptions(threads, blockSpecs));
          const QueryResult result = block.run(q);
          SCOPED_TRACE(w.name + " backend=" + cost::backendKindName(backend) +
                       " blockSpecs=" + std::to_string(blockSpecs) +
                       " threads=" + std::to_string(threads));
          expectSameResult(reference, result);
          expectExactAccounting(result);
          EXPECT_EQ(result.cache.skipped, 0u);
        }
      }
    }
  }
}

TEST(BlockDifferential, WarmRunsStayBitIdentical) {
  // A warm cache turns would-be pruned candidates into peek hits; the block
  // path's output must not care.
  ExploreQuery q(wl::gemm(8, 8, 8));
  q.array.rows = q.array.cols = 4;

  ExplorationService scalar(blockOptions(1, 0));
  const auto reference = scalar.run(q);

  ExplorationService block(blockOptions(1, 64));
  const auto cold = block.run(q);
  (void)block.evaluateAll(q);  // prime the cache with every evaluation
  const auto warm = block.run(q);

  expectSameResult(reference, cold);
  expectSameResult(reference, warm);
  EXPECT_EQ(warm.cache.pruned, 0u);  // everything cached: peek wins first
  expectExactAccounting(warm);
}

TEST(BlockDifferential, MixedScalarAndBlockTrafficSharesOneCache) {
  // Entries written by the block path must read back identically on the
  // scalar path (and vice versa): evaluateAll on a block-warmed service has
  // to match a fresh scalar service's evaluateAll report for report.
  ExploreQuery q(wl::attention(8, 8, 8));
  q.array.rows = q.array.cols = 4;

  ExplorationService block(blockOptions(1, 16));
  (void)block.run(q);  // warm the cache through forceBlock
  const auto viaBlockCache = block.evaluateAll(q);

  ExplorationService scalar(blockOptions(1, 0));
  const auto viaScalar = scalar.evaluateAll(q);

  ASSERT_EQ(viaBlockCache.size(), viaScalar.size());
  for (std::size_t i = 0; i < viaScalar.size(); ++i)
    expectSameReport(viaBlockCache[i], viaScalar[i]);
}

TEST(BlockDifferential, BatchedQueriesMatchScalarBatch) {
  // runBatch with duplicates and both backends: positional results from the
  // block pipeline equal the scalar pipeline's.
  std::vector<ExploreQuery> batch;
  for (const auto backend :
       {cost::BackendKind::Asic, cost::BackendKind::Fpga}) {
    ExploreQuery q(wl::gemm(6, 6, 6));
    q.array.rows = q.array.cols = 4;
    q.backend = backend;
    batch.push_back(q);
    batch.push_back(q);  // duplicate: exercises shared once-flag entries
  }

  ExplorationService scalar(blockOptions(8, 0));
  ExplorationService block(blockOptions(8, 16));
  const auto expected = scalar.runBatch(batch);
  const auto actual = block.runBatch(batch);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    expectSameResult(expected[i], actual[i]);
    expectExactAccounting(actual[i]);
  }
}

// --- deadline accounting on the block path -----------------------------------

class BlockDeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override { support::FaultInjector::instance().disarm(); }
  void TearDown() override { support::FaultInjector::instance().disarm(); }
};

TEST_F(BlockDeadlineTest, ExpiryCountsWholeRemainderAsSkipped) {
  support::FaultInjector::instance().arm("work_unit=sleep:30@0");
  ExploreQuery q(wl::gemm(5, 5, 5));
  q.array.rows = q.array.cols = 4;
  q.deadlineMs = 1;
  ExplorationService service(blockOptions(1, 8));
  const auto r = service.run(q);
  EXPECT_TRUE(r.timedOut);
  EXPECT_GT(r.cache.skipped, 0u);
  // The deadline is only observed at block boundaries, so the whole
  // untouched remainder of every unit lands in `skipped` and the bucket
  // invariant survives the partial result.
  expectExactAccounting(r);
}

TEST_F(BlockDeadlineTest, GenerousDeadlineChangesNothing) {
  ExploreQuery q(wl::gemm(5, 5, 5));
  q.array.rows = q.array.cols = 4;

  ExplorationService scalar(blockOptions(1, 0));
  const auto reference = scalar.run(q);

  ExploreQuery bounded = q;
  bounded.deadlineMs = 60'000;
  ExplorationService block(blockOptions(1, 8));
  const auto r = block.run(bounded);
  EXPECT_FALSE(r.timedOut);
  EXPECT_EQ(r.cache.skipped, 0u);
  expectSameResult(reference, r);
  expectExactAccounting(r);
}

// --- packed-model unit checks ------------------------------------------------

TEST(BlockPacked, MappingMatchesComputeMappingAcrossWorkloads) {
  for (const auto& w : wl::allWorkloads()) {
    const auto specs = enumerateSpecs(w.algebra, 120, !w.allowAllUnicast);
    ASSERT_FALSE(specs->empty()) << w.name;
    const auto set = stt::packSpecBlocks(specs);
    ASSERT_EQ(set->count, specs->size());
    for (const int dataBytes : {2, 4}) {
      stt::ArrayConfig config;
      config.rows = config.cols = 4;
      config.dataBytes = dataBytes;
      for (std::size_t i = 0; i < set->count; ++i) {
        SCOPED_TRACE(w.name + " spec=" + std::to_string(i) +
                     " dataBytes=" + std::to_string(dataBytes));
        const stt::TileMapping expected =
            stt::computeMapping((*specs)[i], config);
        const stt::TileMapping actual =
            stt::computeMappingPacked(*set, i, config);
        EXPECT_EQ(expected.fullTile, actual.fullTile);
        EXPECT_EQ(expected.spatialRowsUsed, actual.spatialRowsUsed);
        EXPECT_EQ(expected.spatialColsUsed, actual.spatialColsUsed);
        EXPECT_EQ(expected.replication, actual.replication);
        EXPECT_EQ(expected.outerIterations, actual.outerIterations);
        ASSERT_EQ(expected.tiles.size(), actual.tiles.size());
        for (std::size_t t = 0; t < expected.tiles.size(); ++t) {
          EXPECT_EQ(expected.tiles[t].shape, actual.tiles[t].shape);
          EXPECT_EQ(expected.tiles[t].count, actual.tiles[t].count);
          EXPECT_EQ(expected.tiles[t].macs, actual.tiles[t].macs);
          EXPECT_EQ(expected.tiles[t].computeCycles,
                    actual.tiles[t].computeCycles);
          EXPECT_EQ(expected.tiles[t].trafficWords,
                    actual.tiles[t].trafficWords);
          EXPECT_EQ(expected.tiles[t].tensorFootprints,
                    actual.tiles[t].tensorFootprints);
        }
      }
    }
  }
}

TEST(BlockPacked, LowerBoundBlockEqualsScalarLowerBound) {
  const auto backends = {cost::makeAsicBackend(16), cost::makeFpgaBackend()};
  for (const auto& w : wl::allWorkloads()) {
    const auto specs = enumerateSpecs(w.algebra, 96, !w.allowAllUnicast);
    const auto set = stt::packSpecBlocks(specs);
    stt::ArrayConfig array;
    array.rows = array.cols = 4;
    std::vector<std::size_t> indices(set->count);
    for (std::size_t i = 0; i < set->count; ++i) indices[i] = i;
    for (const auto& backend : backends) {
      std::vector<cost::CostBound> packed(set->count);
      backend->lowerBoundBlock(*set, indices.data(), indices.size(), array,
                               packed.data());
      for (std::size_t i = 0; i < set->count; ++i) {
        SCOPED_TRACE(w.name + " spec=" + std::to_string(i) + " backend=" +
                     backend->name());
        const cost::CostBound scalar = backend->lowerBound((*specs)[i], array);
        EXPECT_EQ(scalar.cycles, packed[i].cycles);
        EXPECT_EQ(scalar.figures.powerMw, packed[i].figures.powerMw);
        EXPECT_EQ(scalar.figures.area, packed[i].figures.area);
      }
    }
  }
}

TEST(BlockPacked, MappingClassesShareMappingsSoundly) {
  // Two specs in one mapping class must produce identical mappings — that
  // equivalence is what lets BlockMappingStore run one tile search per
  // class. Spot-check by comparing every spec's packed mapping against its
  // class representative's.
  const auto specs = enumerateSpecs(wl::gemm(8, 8, 8), 200, true);
  const auto set = stt::packSpecBlocks(specs);
  EXPECT_GT(set->mapClassCount, 0u);
  EXPECT_LT(set->mapClassCount, set->count);  // dedup must actually bite
  stt::ArrayConfig config;
  config.rows = config.cols = 4;
  std::vector<std::int64_t> representativeCycles(set->mapClassCount, -1);
  for (std::size_t i = 0; i < set->count; ++i) {
    const auto mapping = stt::computeMappingPacked(*set, i, config);
    const std::int64_t cycles = mapping.serialComputeCycles();
    auto& rep = representativeCycles[set->mapClass[i]];
    if (rep < 0)
      rep = cycles;
    else
      EXPECT_EQ(rep, cycles) << "spec " << i;
  }
}

}  // namespace
}  // namespace tensorlib::driver
