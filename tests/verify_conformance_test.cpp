// The differential oracle itself: every registered workload scenario must be
// fully conformant across all four engines, an injected fault in the
// compiled RTL tape must be caught AND localized to exactly that layer, and
// the driver-level entry point must expose the same verdicts.
#include "verify/conformance.hpp"

#include <gtest/gtest.h>

#include "driver/session.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::verify {
namespace {

namespace wl = tensor::workloads;

ConformanceOptions testOptions() {
  ConformanceOptions o;
  o.maxSpecsPerSelection = 4;  // runtime cap; the CLI sweeps the full table
  o.maxRtlSpecs = 2;
  return o;
}

TEST(Conformance, AllRegisteredWorkloadsConform) {
  for (const auto& w : wl::allWorkloads()) {
    ConformanceOptions o = testOptions();
    o.enumeration.dropAllUnicast = !w.allowAllUnicast;
    const ConformanceReport report = checkAlgebra(w.algebra, o);
    EXPECT_TRUE(report.pass()) << w.name << "\n" << report.summary();
    EXPECT_GT(report.specsChecked, 0u) << w.name;
    EXPECT_GT(report.rtlSpecsChecked, 0u) << w.name;
  }
}

TEST(Conformance, ReportCarriesReplayContext) {
  const auto g = wl::gemm(6, 6, 6);
  ConformanceOptions o = testOptions();
  o.dataSeed = 1234;
  const ConformanceReport report = checkAlgebra(g, o);
  EXPECT_TRUE(report.pass()) << report.summary();
  EXPECT_EQ(report.dataSeed, 1234u);
  EXPECT_NE(report.summary().find("seed=1234"), std::string::npos);
}

// Fault-injection demo: flip the compiled tape's width masks. The oracle
// must fail, and the FIRST divergent layer must be rtl-compiled — reference,
// both behavioral paths and the legacy RTL interpreter all still agree.
TEST(Conformance, InjectedTapeFaultIsLocalizedToCompiledRtl) {
  const auto g = wl::gemm(6, 6, 6);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  ASSERT_TRUE(spec.has_value());

  ConformanceOptions o = testOptions();
  o.tamperRtlTape = true;
  const SpecReport report = checkSpec(*spec, o);
  ASSERT_FALSE(report.pass()) << report.summary();
  ASSERT_TRUE(report.firstDivergence().has_value());
  EXPECT_EQ(*report.firstDivergence(), Layer::RtlCompiled) << report.summary();
  for (const auto& layer : report.layers) {
    if (layer.layer == Layer::RtlCompiled) {
      EXPECT_TRUE(layer.ran && !layer.matched);
    } else {
      EXPECT_TRUE(!layer.ran || layer.matched)
          << layerName(layer.layer) << " should not diverge";
    }
  }
  // Untampered, the same design point is conformant.
  o.tamperRtlTape = false;
  EXPECT_TRUE(checkSpec(*spec, o).pass());
}

TEST(Conformance, RankTwoOutputsSkipRtlButStillVerifyBehaviorally) {
  // MTTKRP enumerations include rank-2 ("B") outputs; those design points
  // must report the RTL layers as skipped, not as divergent.
  const auto mt = wl::mttkrp(4, 4, 4, 4);
  ConformanceOptions o = testOptions();
  o.maxSpecsPerSelection = 12;
  const ConformanceReport report = checkAlgebra(mt, o);
  EXPECT_TRUE(report.pass()) << report.summary();
}

TEST(Conformance, SessionEntryPointUsesTheSessionArray) {
  stt::ArrayConfig array;
  array.rows = array.cols = 4;
  driver::Session session(wl::attention(4, 4, 4), array);
  const ConformanceReport report = session.verifyConformance(testOptions());
  EXPECT_TRUE(report.pass()) << report.summary();
  EXPECT_GT(report.specsChecked, 0u);
}

TEST(Conformance, EmptyDesignSpaceIsNotAGreenVerdict) {
  // Under the default dropAllUnicast filter the pointwise shape enumerates
  // nothing; the oracle must report that as vacuous, never as conformant.
  const ConformanceReport report =
      checkAlgebra(wl::pointwiseResidual(3, 4, 4), testOptions());
  EXPECT_FALSE(report.pass());
  EXPECT_EQ(report.specsChecked, 0u);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_NE(report.summary().find("VACUOUS"), std::string::npos);
}

TEST(Conformance, RtlBudgetZeroDisablesRtlLayers) {
  ConformanceOptions o = testOptions();
  o.maxRtlSpecs = 0;
  const ConformanceReport report = checkAlgebra(wl::gemm(5, 5, 5), o);
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.rtlSpecsChecked, 0u);
}

}  // namespace
}  // namespace tensorlib::verify
