// Tests for the hardware IR: netlist construction, validation, the RTL
// cycle simulator, and the Verilog backend.
#include <gtest/gtest.h>

#include "hwir/rtlsim.hpp"
#include "hwir/verilog.hpp"
#include "support/error.hpp"

namespace tensorlib::hwir {
namespace {

TEST(Netlist, BuildAndValidate) {
  Netlist n("t");
  const NodeId a = n.input("a", 16);
  const NodeId b = n.input("b", 16);
  const NodeId s = n.add(a, b, "sum");
  n.output("y", s);
  EXPECT_EQ(n.validate().size(), 4u);
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
}

TEST(Netlist, DuplicatePortNameThrows) {
  Netlist n("t");
  n.input("a", 8);
  EXPECT_THROW(n.input("a", 8), Error);
}

TEST(Netlist, UnconnectedRegThrows) {
  Netlist n("t");
  n.reg(8, DataKind::Bits, 0, "r");
  EXPECT_THROW(n.validate(), Error);
}

TEST(Netlist, RegFeedbackIsLegal) {
  // Accumulator: reg feeds its own adder. Not a combinational cycle.
  Netlist n("t");
  const NodeId x = n.input("x", 16);
  const NodeId acc = n.reg(16, DataKind::Bits, 0, "acc");
  n.connectRegInput(acc, n.add(acc, x));
  n.output("y", acc);
  EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  // Combinational cycles are unconstructible through the builder (every
  // arg must already exist; only register D-inputs may point forward), so
  // validate()'s order must place each combinational node after its args.
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  const NodeId acc = n.reg(8, DataKind::Bits, 0, "acc");
  const NodeId sum = n.add(acc, a);
  n.connectRegInput(acc, sum);  // legal feedback through the register
  n.output("y", sum);
  const auto order = n.validate();
  std::vector<std::size_t> position(n.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (NodeId id = 0; id < n.size(); ++id) {
    const Node& node = n.node(id);
    if (isSource(node.op)) continue;
    for (NodeId arg : node.args)
      EXPECT_LT(position[arg], position[id]) << "node " << id;
  }
}

TEST(Netlist, RegBitsAndOpCounts) {
  Netlist n("t");
  const NodeId x = n.input("x", 16);
  const NodeId r = n.reg(16, DataKind::Bits, 0, "r");
  n.connectRegInput(r, x);
  n.pipeline(x, 3, "p");
  const auto counts = n.opCounts();
  EXPECT_EQ(counts.at(Op::Reg), 4);
  EXPECT_EQ(n.regBits(), 64);
}

TEST(Netlist, AdderTreeCounts) {
  Netlist n("t");
  std::vector<NodeId> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(n.input("x" + std::to_string(i), 16));
  n.output("y", n.adderTree(leaves, "tree"));
  EXPECT_EQ(n.opCounts().at(Op::Add), 7);  // 8 leaves -> 7 adders
}

TEST(RtlSim, CombinationalAdd) {
  Netlist n("t");
  const NodeId a = n.input("a", 16);
  const NodeId b = n.input("b", 16);
  n.output("y", n.add(a, b));
  RtlSimulator sim(n);
  sim.poke("a", 7);
  sim.poke("b", 5);
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), 12u);
}

TEST(RtlSim, TwoComplementWraps) {
  Netlist n("t");
  const NodeId a = n.input("a", 16);
  const NodeId b = n.input("b", 16);
  n.output("y", n.mul(a, b));
  RtlSimulator sim(n);
  sim.poke("a", RtlSimulator::encodeInt(-3, 16));
  sim.poke("b", RtlSimulator::encodeInt(5, 16));
  sim.evaluate();
  EXPECT_EQ(RtlSimulator::decodeInt(sim.peekOutput("y"), 16), -15);
}

TEST(RtlSim, RegisterDelaysOneCycle) {
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  const NodeId r = n.reg(8, DataKind::Bits, 42, "r");
  n.connectRegInput(r, a);
  n.output("y", r);
  RtlSimulator sim(n);
  sim.poke("a", 7);
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), 42u);  // init value before first edge
  sim.step();
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), 7u);
}

TEST(RtlSim, EnabledRegisterHolds) {
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  const NodeId en = n.input("en", 1);
  const NodeId r = n.reg(8, DataKind::Bits, 0, "r");
  n.connectRegInput(r, a);
  n.connectRegEnable(r, en);
  n.output("y", r);
  RtlSimulator sim(n);
  sim.poke("a", 9);
  sim.poke("en", 0);
  sim.evaluate();
  sim.step();
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), 0u);  // held
  sim.poke("en", 1);
  sim.evaluate();
  sim.step();
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), 9u);
}

TEST(RtlSim, AccumulatorSumsAStream) {
  Netlist n("t");
  const NodeId x = n.input("x", 32);
  const NodeId acc = n.reg(32, DataKind::Bits, 0, "acc");
  n.connectRegInput(acc, n.add(acc, x));
  n.output("y", acc);
  RtlSimulator sim(n);
  for (int i = 1; i <= 10; ++i) {
    sim.poke("x", static_cast<std::uint64_t>(i));
    sim.evaluate();
    sim.step();
  }
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), 55u);
}

TEST(RtlSim, Float32Mac) {
  Netlist n("t");
  const NodeId a = n.input("a", 32, DataKind::Float32);
  const NodeId b = n.input("b", 32, DataKind::Float32);
  const NodeId acc = n.reg(32, DataKind::Float32, 0, "acc");
  n.connectRegInput(acc, n.add(acc, n.mul(a, b)));
  n.output("y", acc);
  RtlSimulator sim(n);
  sim.poke("a", RtlSimulator::encodeFloat(1.5f));
  sim.poke("b", RtlSimulator::encodeFloat(-2.0f));
  sim.evaluate();
  sim.step();
  sim.evaluate();
  EXPECT_FLOAT_EQ(RtlSimulator::decodeFloat(sim.peekOutput("y")), -3.0f);
}

TEST(RtlSim, MuxAndComparators) {
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  const NodeId b = n.input("b", 8);
  n.output("min", n.mux(n.lt(a, b), a, b));
  n.output("same", n.eq(a, b));
  RtlSimulator sim(n);
  sim.poke("a", 3);
  sim.poke("b", 9);
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("min"), 3u);
  EXPECT_EQ(sim.peekOutput("same"), 0u);
}

TEST(RtlSim, PipelineDepth) {
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  n.output("y", n.pipeline(a, 3, "p"));
  RtlSimulator sim(n);
  sim.poke("a", 5);
  sim.evaluate();
  sim.step();
  sim.clearInputs();
  for (int i = 0; i < 2; ++i) {
    sim.evaluate();
    sim.step();
  }
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), 5u);  // emerges after exactly 3 cycles
}

TEST(RtlSim, PokeNonInputThrows) {
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  const NodeId s = n.add(a, a);
  n.output("y", s);
  RtlSimulator sim(n);
  EXPECT_THROW(sim.poke(s, 1), Error);
  EXPECT_THROW(sim.poke("nope", 1), Error);
}

TEST(RtlSim, PeekBeforeEvaluateThrows) {
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  n.output("y", a);
  RtlSimulator sim(n);
  EXPECT_THROW(sim.peekOutput("y"), Error);
  sim.evaluate();
  EXPECT_NO_THROW(sim.peekOutput("y"));
  sim.step();
  EXPECT_THROW(sim.peekOutput("y"), Error);  // stale after the edge
}

TEST(RtlSim, StepWithoutEvaluateThrows) {
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  n.output("y", a);
  RtlSimulator sim(n);
  EXPECT_THROW(sim.step(), Error);
}

TEST(RtlSim, IntEncodeDecodeRoundTrip) {
  for (int width : {8, 16, 32}) {
    for (std::int64_t v : {-128ll, -1ll, 0ll, 1ll, 127ll}) {
      const auto bits = RtlSimulator::encodeInt(v, width);
      EXPECT_EQ(RtlSimulator::decodeInt(bits, width), v) << width << " " << v;
    }
  }
}

TEST(RtlSim, WidthMaskingWraps) {
  Netlist n("t");
  const NodeId a = n.input("a", 8);
  const NodeId b = n.input("b", 8);
  n.output("y", n.add(a, b));
  RtlSimulator sim(n);
  sim.poke("a", 200);
  sim.poke("b", 100);
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), (200u + 100u) & 0xff);
}

TEST(Verilog, EmitsModuleWithPorts) {
  Netlist n("top");
  const NodeId a = n.input("a", 16);
  const NodeId r = n.reg(16, DataKind::Bits, 0, "pe_0_0/r");
  n.connectRegInput(r, a);
  n.output("y", r);
  const std::string v = emitVerilog(n);
  EXPECT_NE(v.find("module top ("), std::string::npos);
  EXPECT_NE(v.find("input [15:0] a"), std::string::npos);
  EXPECT_NE(v.find("output [15:0] y"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("pe_0_0_r"), std::string::npos);  // legalized name
}

TEST(Verilog, Fp32UsesBlackboxes) {
  Netlist n("top");
  const NodeId a = n.input("a", 32, DataKind::Float32);
  const NodeId b = n.input("b", 32, DataKind::Float32);
  n.output("y", n.mul(a, b));
  const std::string v = emitVerilog(n);
  EXPECT_NE(v.find("fp32_mul"), std::string::npos);
}

TEST(Verilog, CoversEveryCombinationalOp) {
  Netlist n("ops");
  const NodeId a = n.input("a", 8);
  const NodeId b = n.input("b", 8);
  n.output("o_add", n.add(a, b));
  n.output("o_sub", n.sub(a, b));
  n.output("o_mul", n.mul(a, b));
  n.output("o_mux", n.mux(n.eq(a, b), a, b));
  n.output("o_lt", n.lt(a, b));
  n.output("o_and", n.logicalAnd(a, b));
  n.output("o_or", n.logicalOr(a, b));
  n.output("o_not", n.logicalNot(a));
  n.output("o_const", n.constant(42, 8));
  const std::string v = emitVerilog(n);
  for (const char* frag : {" + ", " - ", " * ", " ? ", " < ", " & ", " | ",
                           "= ~", "8'd42", "=="})
    EXPECT_NE(v.find(frag), std::string::npos) << frag;
}

TEST(Verilog, NamesAreLegalizedAndUnique) {
  Netlist n("t");
  const NodeId a = n.input("data_in", 8);
  const NodeId r1 = n.reg(8, DataKind::Bits, 0, "pe/0/weird name!");
  const NodeId r2 = n.reg(8, DataKind::Bits, 0, "pe/0/weird name!");
  n.connectRegInput(r1, a);
  n.connectRegInput(r2, a);
  n.output("q1", r1);
  n.output("q2", r2);
  const std::string v = emitVerilog(n);
  // Same user name, distinct emitted identifiers (id suffix).
  EXPECT_NE(v.find("pe_0_weird_name__" + std::to_string(r1)),
            std::string::npos);
  EXPECT_NE(v.find("pe_0_weird_name__" + std::to_string(r2)),
            std::string::npos);
}

TEST(Verilog, EnabledRegisterEmitsConditional) {
  Netlist n("top");
  const NodeId a = n.input("a", 8);
  const NodeId en = n.input("en", 1);
  const NodeId r = n.reg(8, DataKind::Bits, 0, "r");
  n.connectRegInput(r, a);
  n.connectRegEnable(r, en);
  n.output("y", r);
  const std::string v = emitVerilog(n);
  EXPECT_NE(v.find("? (a) :"), std::string::npos);
}

}  // namespace
}  // namespace tensorlib::hwir
