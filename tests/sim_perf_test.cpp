// Analytic performance model tests: agreement with the behavioral simulator
// on small instances and the qualitative orderings Fig. 5 depends on.
#include "sim/perf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/dfsim.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::sim {
namespace {

namespace wl = tensor::workloads;

stt::DataflowSpec specOf(const tensor::TensorAlgebra& algebra,
                         const std::string& label) {
  auto spec = stt::findDataflowByLabel(algebra, label);
  EXPECT_TRUE(spec.has_value()) << label;
  return *spec;
}

TEST(Perf, ComputeCyclesMatchSimulatorExactly) {
  const auto g = wl::gemm(12, 12, 12);
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  SimOptions opts;
  opts.functional = false;
  for (const char* label : {"MNK-SST", "MNK-MMT", "MNK-STS", "MNK-MTM"}) {
    const auto spec = specOf(g, label);
    const auto model = estimatePerformance(spec, cfg);
    const auto simd = simulate(spec, cfg, nullptr, opts);
    EXPECT_EQ(model.computeCycles, simd.computeCycles) << label;
    EXPECT_EQ(model.macs, simd.macs) << label;
    EXPECT_EQ(model.trafficWords, simd.trafficWords) << label;
  }
}

TEST(Perf, TotalCyclesTrackSimulatorUnderBandwidthPressure) {
  const auto bg = wl::batchedGemv(16, 16, 16);
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  cfg.bandwidthGBps = 8.0;
  SimOptions opts;
  opts.functional = false;
  for (const char* label : {"MNK-UMM", "MNK-USS"}) {
    const auto spec = specOf(bg, label);
    const auto model = estimatePerformance(spec, cfg);
    const auto simd = simulate(spec, cfg, nullptr, opts);
    // The model's aggregate server can't start serving early bursts late,
    // so it lower-bounds the profile-accurate simulator within ~25%.
    EXPECT_LE(model.totalCycles, simd.cycles) << label;
    EXPECT_GT(model.totalCycles * 1.25, static_cast<double>(simd.cycles))
        << label;
  }
}

TEST(Perf, MulticastBeatsSystolicOnGemm) {
  // Fig. 5(a): MTM-style multicast dataflows outperform SST systolic because
  // of the systolic pipeline fill (time row spans all three loops).
  const auto g = wl::gemm(256, 256, 256);
  stt::ArrayConfig cfg;  // paper: 16x16 @ 320MHz, 32GB/s
  const auto mtm = estimatePerformance(specOf(g, "MNK-MTM"), cfg);
  const auto sst = estimatePerformance(specOf(g, "MNK-SST"), cfg);
  EXPECT_LT(mtm.totalCycles, sst.totalCycles);
  EXPECT_GT(mtm.utilization, 0.9);
  EXPECT_GT(sst.utilization, 0.75);
  EXPECT_LT(sst.utilization, mtm.utilization);
}

TEST(Perf, UnicastIsBandwidthBound) {
  // Fig. 5(b)/(d): unicast dataflows saturate the 32 GB/s scratchpad.
  const auto bg = wl::batchedGemv(256, 256, 256);
  stt::ArrayConfig cfg;
  const auto u = estimatePerformance(specOf(bg, "MNK-UMM"), cfg);
  EXPECT_TRUE(u.bandwidthBound);
  EXPECT_LT(u.utilization, 0.6);
}

TEST(Perf, SmallKernelLoopsCapUtilization) {
  // Fig. 5(f): mapping a kernel loop (extent 3) spatially keeps at most
  // 15 of 16 rows busy.
  const auto conv = wl::conv2dResNetLayer2();
  stt::ArrayConfig cfg;
  const auto r = estimatePerformance(specOf(conv, "XPQ-MMB"), cfg);
  EXPECT_LE(r.utilization, 15.0 / 16.0 + 1e-9);
}

TEST(Perf, ResNetLayer5SlowerThanLayer2OnSpatialXY) {
  // Fig. 5(g): with X mapped spatially, layer-5's 7x7 maps leave the array
  // underutilized relative to layer-2's 56x56 maps. (KCX-style dataflows
  // don't suffer: their spatial loops are the big channel dimensions.)
  stt::ArrayConfig cfg;
  const auto l2 =
      estimatePerformance(specOf(wl::conv2dResNetLayer2(), "XPQ-MMB"), cfg);
  const auto l5 =
      estimatePerformance(specOf(wl::conv2dResNetLayer5(), "XPQ-MMB"), cfg);
  EXPECT_GT(l2.utilization, l5.utilization);
}

TEST(Perf, KcxBeatsXySpatialOnLargeConv) {
  // Paper: "for Conv2D workloads, selecting KCX iterations can deliver
  // better performance because it becomes standard GEMM with large bounds".
  const auto conv = wl::conv2dResNetLayer2();
  stt::ArrayConfig cfg;
  const auto kcx = estimatePerformance(specOf(conv, "KCX-SST"), cfg);
  const auto xpq = estimatePerformance(specOf(conv, "XPQ-MMB"), cfg);
  EXPECT_GT(kcx.utilization, xpq.utilization);
}

TEST(Perf, ThroughputScalesWithFrequency) {
  const auto g = wl::gemm(64, 64, 64);
  stt::ArrayConfig lo, hi;
  lo.frequencyMHz = 160.0;
  hi.frequencyMHz = 320.0;
  // Keep words-per-cycle identical so only frequency differs.
  lo.bandwidthGBps = 16.0;
  hi.bandwidthGBps = 32.0;
  const auto spec = specOf(g, "MNK-MMT");
  const auto l = estimatePerformance(spec, lo);
  const auto h = estimatePerformance(spec, hi);
  EXPECT_EQ(l.totalCycles, h.totalCycles);
  EXPECT_NEAR(h.throughputGops, 2.0 * l.throughputGops, 1e-9);
}

TEST(Perf, StrDescribesResult) {
  const auto g = wl::gemm(16, 16, 16);
  stt::ArrayConfig cfg;
  const auto r = estimatePerformance(specOf(g, "MNK-MMT"), cfg);
  EXPECT_NE(r.str().find("cycles="), std::string::npos);
}

// Property: normalized performance (utilization) is in (0,1] for every
// enumerated design of every Table-II workload at paper scale.
struct PerfSweepCase {
  const char* name;
  tensor::TensorAlgebra algebra;
};

class PerfSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PerfSweepTest, EnumeratedDesignsHaveSaneUtilization) {
  std::vector<tensor::TensorAlgebra> algebras{
      wl::gemm(64, 64, 64), wl::batchedGemv(32, 32, 32),
      wl::depthwiseConv(16, 14, 14, 3, 3), wl::mttkrp(16, 16, 16, 16),
      wl::ttmc(8, 8, 8, 8, 8)};
  const auto& algebra = algebras[static_cast<std::size_t>(GetParam())];
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const auto sels = stt::allLoopSelections(algebra);
  // First selection only per instance: the full cross product is covered by
  // the enumeration tests; here we check the perf model stays sane.
  const auto specs = stt::enumerateTransforms(algebra, sels.front());
  for (const auto& spec : specs) {
    const auto r = estimatePerformance(spec, cfg);
    EXPECT_GT(r.utilization, 0.0) << spec.describe();
    EXPECT_LE(r.utilization, 1.0 + 1e-9) << spec.describe();
    EXPECT_GE(r.totalCycles, r.computeCycles) << spec.describe();
    EXPECT_EQ(r.macs, algebra.totalMacs()) << spec.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, PerfSweepTest, ::testing::Range(0, 5));

// Regression for the unguarded divisions in the ratio metrics (same class
// of bug as the PR-1 SimResult::utilization fix): zero cycles and a zero
// frequency used to make utilization NaN and throughputGops inf.
TEST(Perf, FinalizeIsDivisionSafe) {
  stt::ArrayConfig cfg;

  PerfResult zeroed;  // all counters zero: 0 / 0 in both ratios
  const PerfResult empty = finalizePerf(zeroed, cfg);
  EXPECT_EQ(empty.utilization, 0.0);
  EXPECT_EQ(empty.throughputGops, 0.0);
  EXPECT_TRUE(std::isfinite(empty.utilization));
  EXPECT_TRUE(std::isfinite(empty.throughputGops));

  PerfResult busy;
  busy.totalCycles = 128;
  busy.macs = 1024;
  stt::ArrayConfig stopped = cfg;
  stopped.frequencyMHz = 0.0;  // seconds == 0: throughput would be inf
  const PerfResult atZeroHz = finalizePerf(busy, stopped);
  EXPECT_GT(atZeroHz.utilization, 0.0);
  EXPECT_EQ(atZeroHz.throughputGops, 0.0);
  EXPECT_TRUE(std::isfinite(atZeroHz.throughputGops));

  // The estimate path keeps producing finite metrics for a real spec.
  const auto spec = specOf(wl::gemm(8, 8, 8), "MNK-SST");
  stt::ArrayConfig small;
  small.rows = small.cols = 4;
  const PerfResult r = estimatePerformance(spec, small);
  EXPECT_TRUE(std::isfinite(r.utilization));
  EXPECT_TRUE(std::isfinite(r.throughputGops));
  EXPECT_GT(r.throughputGops, 0.0);
}

// The cycles lower bound is sound on the named designs and exact for the
// utilization-1.0 ones.
TEST(Perf, CyclesLowerBoundHoldsForNamedDesigns) {
  const auto g = wl::gemm(32, 32, 32);
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  for (const char* label : {"MNK-SST", "MNK-MMT", "MNK-STS", "MNK-MTM"}) {
    const auto spec = specOf(g, label);
    const auto perf = estimatePerformance(spec, cfg);
    EXPECT_LE(cyclesLowerBound(spec, cfg), perf.totalCycles) << label;
  }
}

}  // namespace
}  // namespace tensorlib::sim
