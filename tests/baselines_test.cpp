// Baseline capability-model tests: the generality claims of Section VI-C.
#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"
#include "workload_samples.hpp"

namespace tensorlib::baselines {
namespace {

namespace wl = tensor::workloads;

TEST(Baselines, ReportedTableThreeRows) {
  const auto rows = reportedBaselineMetrics();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].generator, "Susy");
  EXPECT_EQ(rows[2].generator, "PolySA");
  EXPECT_DOUBLE_EQ(rows[2].gops, 555.0);
  EXPECT_DOUBLE_EQ(rows[0].frequencyMHz, 202.0);
}

TEST(Baselines, SystolicOnlySupportsSystolicGemm) {
  const auto g = wl::gemm(16, 16, 16);
  const auto p = polysa();
  EXPECT_TRUE(p.supportsDataflow(*stt::findDataflowByLabel(g, "MNK-SST")));
  EXPECT_TRUE(p.supportsDataflow(*stt::findDataflowByLabel(g, "MNK-STS")));
  EXPECT_FALSE(p.supportsDataflow(*stt::findDataflowByLabel(g, "MNK-MMT")));
  EXPECT_FALSE(p.supportsDataflow(*stt::findDataflowByLabel(g, "MNK-SSM")));
}

TEST(Baselines, UnicastAndRank2OutOfScope) {
  const auto bg = wl::batchedGemv(8, 8, 8);
  EXPECT_FALSE(susy().supportsDataflow(*stt::findDataflowByLabel(bg, "MNK-USS")));
  const auto tt = wl::ttmc(8, 8, 8, 8, 8);
  EXPECT_FALSE(
      susy().supportsDataflow(*stt::findDataflowByLabel(tt, "IJK-BBBU")));
}

TEST(Baselines, AlgebraSupportMatchesPaperClaims) {
  const auto p = polysa();
  EXPECT_TRUE(p.supportsAlgebra(wl::gemm(8, 8, 8)));
  EXPECT_TRUE(p.supportsAlgebra(wl::conv2d(8, 8, 8, 8, 3, 3)));
  // "they fail to generate hardware for algorithms that don't fit well in
  // systolic architecture, such as Depthwise convolution"
  EXPECT_FALSE(p.supportsAlgebra(wl::depthwiseConv(8, 8, 8, 3, 3)));
  EXPECT_FALSE(p.supportsAlgebra(wl::mttkrp(8, 8, 8, 8)));
  EXPECT_FALSE(p.supportsAlgebra(wl::ttmc(8, 8, 8, 8, 8)));
}

TEST(Baselines, TensorLibCoversStrictlyMoreDataflows) {
  const auto g = wl::gemm(16, 16, 16);
  const auto specs = stt::enumerateTransforms(g, stt::LoopSelection(g, {0, 1, 2}));
  const std::size_t baselineCount = polysa().coverageOf(specs);
  EXPECT_GT(baselineCount, 0u);
  EXPECT_LT(baselineCount, specs.size() / 2)
      << "systolic-only generators cover a small corner of the space";
}

// ---- table-driven coverage over the scenario library -----------------------

using ::tensorlib::testing::cappedSpecs;

bool pureSystolicStationary(const stt::DataflowSpec& spec) {
  for (const auto& role : spec.tensors()) {
    const auto c = role.dataflow.dataflowClass;
    if (c != stt::DataflowClass::Systolic &&
        c != stt::DataflowClass::Stationary)
      return false;
  }
  return true;
}

TEST(BaselinesTableDriven, CapabilityModelMatchesDataflowLetters) {
  // supportsDataflow must be exactly the "every tensor systolic or
  // stationary" predicate on every scenario's design space — and PolySA
  // and Susy share that predicate (they differ only in reported metrics).
  const auto p = polysa();
  const auto s = susy();
  for (const auto& w : wl::allWorkloads()) {
    const auto specs = cappedSpecs(w);
    ASSERT_FALSE(specs.empty()) << w.name;
    for (const auto& spec : specs) {
      EXPECT_EQ(p.supportsDataflow(spec), pureSystolicStationary(spec))
          << w.name << " " << spec.label();
      EXPECT_EQ(p.supportsDataflow(spec), s.supportsDataflow(spec))
          << w.name << " " << spec.label();
    }
    EXPECT_EQ(p.coverageOf(specs), s.coverageOf(specs)) << w.name;
    EXPECT_LE(p.coverageOf(specs), specs.size()) << w.name;
  }
}

TEST(BaselinesTableDriven, StreamingWorkloadsEscapeSystolicGenerators) {
  // The generality claim at scenario-table scale: the all-unicast pointwise
  // shape has NO design a systolic-only generator could produce, while the
  // GEMM-shaped scenarios keep a nonzero (but partial) covered corner.
  // These spaces are 3-loop (single selection) and small, so enumerate them
  // fully — a truncated sample can miss the systolic corner.
  const auto p = polysa();
  for (const char* name : {"gemm", "attention", "pointwise-residual"}) {
    const auto* w = wl::findWorkload(name);
    ASSERT_NE(w, nullptr) << name;
    stt::EnumerationOptions options;
    options.dropAllUnicast = !w->allowAllUnicast;
    const auto specs = stt::enumerateDesignSpace(w->algebra, options);
    ASSERT_FALSE(specs.empty()) << name;
    const std::size_t covered = p.coverageOf(specs);
    if (w->allowAllUnicast) {
      EXPECT_EQ(covered, 0u) << name;
    } else {
      EXPECT_GT(covered, 0u) << name;
      EXPECT_LT(covered, specs.size()) << name;
    }
  }
}

}  // namespace
}  // namespace tensorlib::baselines
