// Baseline capability-model tests: the generality claims of Section VI-C.
#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::baselines {
namespace {

namespace wl = tensor::workloads;

TEST(Baselines, ReportedTableThreeRows) {
  const auto rows = reportedBaselineMetrics();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].generator, "Susy");
  EXPECT_EQ(rows[2].generator, "PolySA");
  EXPECT_DOUBLE_EQ(rows[2].gops, 555.0);
  EXPECT_DOUBLE_EQ(rows[0].frequencyMHz, 202.0);
}

TEST(Baselines, SystolicOnlySupportsSystolicGemm) {
  const auto g = wl::gemm(16, 16, 16);
  const auto p = polysa();
  EXPECT_TRUE(p.supportsDataflow(*stt::findDataflowByLabel(g, "MNK-SST")));
  EXPECT_TRUE(p.supportsDataflow(*stt::findDataflowByLabel(g, "MNK-STS")));
  EXPECT_FALSE(p.supportsDataflow(*stt::findDataflowByLabel(g, "MNK-MMT")));
  EXPECT_FALSE(p.supportsDataflow(*stt::findDataflowByLabel(g, "MNK-SSM")));
}

TEST(Baselines, UnicastAndRank2OutOfScope) {
  const auto bg = wl::batchedGemv(8, 8, 8);
  EXPECT_FALSE(susy().supportsDataflow(*stt::findDataflowByLabel(bg, "MNK-USS")));
  const auto tt = wl::ttmc(8, 8, 8, 8, 8);
  EXPECT_FALSE(
      susy().supportsDataflow(*stt::findDataflowByLabel(tt, "IJK-BBBU")));
}

TEST(Baselines, AlgebraSupportMatchesPaperClaims) {
  const auto p = polysa();
  EXPECT_TRUE(p.supportsAlgebra(wl::gemm(8, 8, 8)));
  EXPECT_TRUE(p.supportsAlgebra(wl::conv2d(8, 8, 8, 8, 3, 3)));
  // "they fail to generate hardware for algorithms that don't fit well in
  // systolic architecture, such as Depthwise convolution"
  EXPECT_FALSE(p.supportsAlgebra(wl::depthwiseConv(8, 8, 8, 3, 3)));
  EXPECT_FALSE(p.supportsAlgebra(wl::mttkrp(8, 8, 8, 8)));
  EXPECT_FALSE(p.supportsAlgebra(wl::ttmc(8, 8, 8, 8, 8)));
}

TEST(Baselines, TensorLibCoversStrictlyMoreDataflows) {
  const auto g = wl::gemm(16, 16, 16);
  const auto specs = stt::enumerateTransforms(g, stt::LoopSelection(g, {0, 1, 2}));
  const std::size_t baselineCount = polysa().coverageOf(specs);
  EXPECT_GT(baselineCount, 0u);
  EXPECT_LT(baselineCount, specs.size() / 2)
      << "systolic-only generators cover a small corner of the space";
}

}  // namespace
}  // namespace tensorlib::baselines
