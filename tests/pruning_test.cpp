// Pruning soundness: the lower-bound dominance cut in the exploration
// service must be invisible in every output. Two layers of evidence:
//
//   * Differential: pruned vs exhaustive frontiers (and winners) are
//     bit-identical across the full workload table x {ASIC, FPGA} backends
//     x {1, 8} worker threads.
//   * Unit: cost::boundFigures never exceeds the true evaluated figures in
//     any axis (cycles, power, area) — checked on fuzz-seeded random
//     algebras and on the registered workloads, both backends.
#include <gtest/gtest.h>

#include <algorithm>

#include "cost/backend.hpp"
#include "driver/explore_service.hpp"
#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"
#include "verify/fuzz.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;

void expectSameReport(const DesignReport& a, const DesignReport& b) {
  EXPECT_EQ(a.spec.label(), b.spec.label());
  EXPECT_EQ(a.spec.transform().str(), b.spec.transform().str());
  EXPECT_EQ(a.perf.totalCycles, b.perf.totalCycles);
  EXPECT_EQ(a.perf.utilization, b.perf.utilization);
  EXPECT_EQ(a.backend, b.backend);
  const auto fa = a.figures(), fb = b.figures();
  EXPECT_EQ(fa.powerMw, fb.powerMw);
  EXPECT_EQ(fa.area, fb.area);
}

void expectSameResult(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.designs, b.designs);
  ASSERT_EQ(a.frontier.size(), b.frontier.size());
  for (std::size_t i = 0; i < a.frontier.size(); ++i)
    expectSameReport(a.frontier[i], b.frontier[i]);
  ASSERT_EQ(a.best.has_value(), b.best.has_value());
  if (a.best) expectSameReport(*a.best, *b.best);
}

ServiceOptions pruningOptions(std::size_t threads) {
  ServiceOptions o;
  o.threads = threads;
  o.workUnitSpecs = 32;  // several units per query even on small spaces
  return o;
}

ExploreQuery workloadQuery(const wl::NamedWorkload& w, cost::BackendKind backend) {
  ExploreQuery q(w.algebra);
  q.array.rows = q.array.cols = 4;
  q.backend = backend;
  q.enumeration.dropAllUnicast = !w.allowAllUnicast;
  return q;
}

// --- the differential satellite ---------------------------------------------

TEST(PruningDifferential, FrontiersBitIdenticalToExhaustiveAcrossTable) {
  for (const auto& w : wl::allWorkloads()) {
    for (const auto backend : {cost::BackendKind::Asic, cost::BackendKind::Fpga}) {
      const ExploreQuery q = workloadQuery(w, backend);

      ServiceOptions exhaustiveOpts = pruningOptions(1);
      exhaustiveOpts.enablePruning = false;
      ExplorationService exhaustive(exhaustiveOpts);
      const QueryResult reference = exhaustive.run(q);
      EXPECT_EQ(reference.cache.pruned, 0u) << w.name;

      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ExplorationService pruned(pruningOptions(threads));
        const QueryResult result = pruned.run(q);
        SCOPED_TRACE(w.name + " backend=" + cost::backendKindName(backend) +
                     " threads=" + std::to_string(threads));
        expectSameResult(reference, result);
        // Every design point is accounted for exactly once.
        EXPECT_EQ(result.cache.hits + result.cache.misses + result.cache.pruned,
                  result.designs);
      }
    }
  }
}

TEST(PruningDifferential, WarmRunsStayBitIdentical) {
  // A warm cache turns would-be pruned candidates into hits; output must
  // not care.
  ExploreQuery q(wl::gemm(8, 8, 8));
  q.array.rows = q.array.cols = 4;

  ServiceOptions opts = pruningOptions(1);
  ExplorationService service(opts);
  const auto cold = service.run(q);

  ServiceOptions exhaustiveOpts = pruningOptions(1);
  exhaustiveOpts.enablePruning = false;
  ExplorationService exhaustive(exhaustiveOpts);
  const auto reference = exhaustive.run(q);
  // Prime the pruned service's cache with every evaluation, then rerun.
  (void)service.evaluateAll(q);
  const auto warm = service.run(q);

  expectSameResult(reference, cold);
  expectSameResult(reference, warm);
  EXPECT_EQ(warm.cache.pruned, 0u);  // everything cached: peek wins first
}

// --- bound soundness --------------------------------------------------------

/// Asserts bound <= true on every enumerated spec of the algebra (capped),
/// both backends. Returns the number of specs checked.
std::size_t checkBounds(const tensor::TensorAlgebra& algebra,
                        const stt::ArrayConfig& array, std::size_t cap,
                        bool dropAllUnicast = true) {
  stt::EnumerationOptions enumeration;
  enumeration.dropAllUnicast = dropAllUnicast;
  std::vector<stt::DataflowSpec> specs;
  for (const auto& sel : stt::allLoopSelections(algebra)) {
    if (specs.size() >= cap) break;
    for (auto& spec : stt::enumerateTransforms(algebra, sel, enumeration)) {
      specs.push_back(std::move(spec));
      if (specs.size() >= cap) break;
    }
  }
  const auto backends = {cost::makeAsicBackend(16), cost::makeFpgaBackend()};
  for (const auto& backend : backends) {
    for (const auto& spec : specs) {
      const cost::CostBound bound = cost::boundFigures(spec, array, *backend);
      const sim::PerfResult perf = backend->estimatePerf(spec, array);
      const cost::CostReport cost = backend->evaluate(spec, array);
      SCOPED_TRACE(algebra.name() + " " + spec.label() + " T=" +
                   spec.transform().str() + " backend=" + backend->name());
      EXPECT_LE(bound.cycles, static_cast<double>(perf.totalCycles));
      EXPECT_LE(bound.figures.powerMw, cost.figures.powerMw);
      EXPECT_LE(bound.figures.area, cost.figures.area);
      // The inventory-derived figures are not just bounded — they are the
      // exact evaluation (the cost models are mapping-free).
      EXPECT_EQ(bound.figures.powerMw, cost.figures.powerMw);
      EXPECT_EQ(bound.figures.area, cost.figures.area);
    }
  }
  return specs.size();
}

TEST(PruningBound, NeverExceedsTrueFiguresOnFuzzedAlgebras) {
  // 200 fuzz-seeded random algebras (strided/offset accesses, 3-4 loops,
  // 1-3 inputs); a handful of specs each keeps the test fast while covering
  // far more access shapes than the workload table.
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto algebra = verify::randomAlgebra(seed);
    stt::ArrayConfig array;
    array.rows = array.cols = 4;
    checked += checkBounds(algebra, array, 6, /*dropAllUnicast=*/false);
  }
  EXPECT_GE(checked, 200u);
}

TEST(PruningBound, NeverExceedsTrueFiguresOnWorkloadTable) {
  for (const auto& w : wl::allWorkloads()) {
    stt::ArrayConfig array;
    array.rows = array.cols = 4;
    checkBounds(w.algebra, array, 24, !w.allowAllUnicast);
  }
}

TEST(PruningBound, TightForPerfectUtilizationGemm) {
  // The compute term is exact for utilization-1.0 designs: the paper-
  // geometry GEMM's best design meets its bound, which is what lets the
  // frontier prune against it.
  const auto gemm = wl::gemm(64, 64, 64);
  ExploreQuery q(gemm);
  ExplorationService service(pruningOptions(1));
  const auto result = service.run(q);
  ASSERT_FALSE(result.frontier.empty());
  const auto& best = result.frontier.front();  // sorted: min cycles first
  const auto backend = cost::makeAsicBackend(q.dataWidth);
  const cost::CostBound bound = cost::boundFigures(best.spec, q.array, *backend);
  EXPECT_EQ(static_cast<double>(best.perf.totalCycles), bound.cycles);
}

}  // namespace
}  // namespace tensorlib::driver
