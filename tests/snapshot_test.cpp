// Snapshot crash-safety tests: roundtrip warmth, every corruption mode
// degrading to a clean cold start, fingerprint/version gating, injected
// write faults, and the differential guarantee — a service restored from a
// snapshot answers bit-identically to one that never snapshotted.
#include "driver/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "driver/explore_service.hpp"
#include "stt/enumerate.hpp"
#include "support/fault.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;
namespace snap = snapshot;

std::vector<ExploreQuery> smallBatch() {
  std::vector<ExploreQuery> batch;
  for (const auto objective :
       {Objective::Performance, Objective::Power, Objective::EnergyDelay}) {
    ExploreQuery q(wl::gemm(5, 5, 5));
    q.array.rows = q.array.cols = 4;
    q.objective = objective;
    batch.push_back(q);
  }
  {
    ExploreQuery q(wl::gemm(5, 5, 5));
    q.array.rows = q.array.cols = 4;
    q.backend = cost::BackendKind::Fpga;
    batch.push_back(q);
  }
  return batch;
}

void expectSameResults(const std::vector<QueryResult>& a,
                       const std::vector<QueryResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].designs, b[i].designs);
    ASSERT_EQ(a[i].frontier.size(), b[i].frontier.size());
    for (std::size_t j = 0; j < a[i].frontier.size(); ++j) {
      const auto& ra = a[i].frontier[j];
      const auto& rb = b[i].frontier[j];
      EXPECT_EQ(ra.spec.label(), rb.spec.label());
      EXPECT_EQ(ra.perf.totalCycles, rb.perf.totalCycles);
      EXPECT_EQ(ra.figures().powerMw, rb.figures().powerMw);
      EXPECT_EQ(ra.figures().area, rb.figures().area);
    }
    ASSERT_EQ(a[i].best.has_value(), b[i].best.has_value());
    if (a[i].best) EXPECT_EQ(a[i].best->spec.label(), b[i].best->spec.label());
  }
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    support::FaultInjector::instance().disarm();
    stt::clearCandidateCache();
    path_ = "snapshot_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".snap";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    support::FaultInjector::instance().disarm();
    std::remove(path_.c_str());
  }

  /// Runs the batch on a fresh single-threaded service (deterministic
  /// pruned-vs-evaluated split, so the snapshot's contents are exact) and
  /// writes a snapshot of it.
  std::vector<QueryResult> writeWarmSnapshot(const std::string& fingerprint) {
    ServiceOptions options;
    options.threads = 1;
    ExplorationService service(options);
    auto results = service.runBatch(smallBatch());
    EXPECT_TRUE(service.saveSnapshot(path_, fingerprint));
    return results;
  }

  std::string readFile() {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void writeFile(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::string fingerprint_ =
      snap::cacheSchemaFingerprint(stt::EnumerationOptions{});
};

TEST_F(SnapshotTest, RoundtripServesEveryQueryFromCache) {
  const auto cold = writeWarmSnapshot(fingerprint_);
  stt::clearCandidateCache();

  ServiceOptions options;
  options.threads = 1;  // deterministic pruning => exact hit accounting
  ExplorationService restored(options);
  const auto result = restored.restoreSnapshot(path_, fingerprint_);
  EXPECT_TRUE(result.restored());
  EXPECT_GT(result.evalEntries, 0u);
  EXPECT_GT(result.candidateLists, 0u);

  const auto warm = restored.runBatch(smallBatch());
  expectSameResults(cold, warm);
  // Every design point the queries touch must come from the restored cache
  // (pruning may cut some before they reach it; none may miss).
  for (const auto& r : warm) EXPECT_EQ(r.cache.misses, 0u) << "cold misses";
}

TEST_F(SnapshotTest, MissingFileIsCleanColdStart) {
  ExplorationService service;
  const auto result = service.restoreSnapshot(path_, fingerprint_);
  EXPECT_EQ(result.status, snap::RestoreStatus::Missing);
  EXPECT_EQ(result.evalEntries, 0u);
}

TEST_F(SnapshotTest, TruncatedSnapshotDegradesToColdStart) {
  const auto cold = writeWarmSnapshot(fingerprint_);
  const std::string bytes = readFile();
  ASSERT_FALSE(bytes.empty());
  writeFile(bytes.substr(0, bytes.size() / 2));

  stt::clearCandidateCache();
  ExplorationService service;
  const auto result = service.restoreSnapshot(path_, fingerprint_);
  EXPECT_EQ(result.status, snap::RestoreStatus::Corrupt);
  EXPECT_EQ(result.evalEntries, 0u);  // never half-populated
  expectSameResults(cold, service.runBatch(smallBatch()));
}

TEST_F(SnapshotTest, FlippedPayloadByteFailsChecksum) {
  const auto cold = writeWarmSnapshot(fingerprint_);
  std::string bytes = readFile();
  ASSERT_GT(bytes.size(), 32u);
  bytes[bytes.size() / 2] ^= 0x01;  // deep inside the payload
  writeFile(bytes);

  stt::clearCandidateCache();
  ExplorationService service;
  const auto result = service.restoreSnapshot(path_, fingerprint_);
  EXPECT_EQ(result.status, snap::RestoreStatus::Corrupt);
  EXPECT_NE(result.message.find("checksum"), std::string::npos);
  expectSameResults(cold, service.runBatch(smallBatch()));
}

TEST_F(SnapshotTest, FlippedChecksumByteIsDetected) {
  writeWarmSnapshot(fingerprint_);
  std::string bytes = readFile();
  // Header layout: magic(8) + version(4) + size(8) + checksum(8).
  ASSERT_GT(bytes.size(), 28u);
  bytes[20] ^= 0x01;  // first checksum byte
  writeFile(bytes);

  ExplorationService service;
  EXPECT_EQ(service.restoreSnapshot(path_, fingerprint_).status,
            snap::RestoreStatus::Corrupt);
}

TEST_F(SnapshotTest, VersionBumpColdStarts) {
  writeWarmSnapshot(fingerprint_);
  std::string bytes = readFile();
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = static_cast<char>(snap::kSnapshotVersion + 1);  // version field
  writeFile(bytes);

  ExplorationService service;
  const auto result = service.restoreSnapshot(path_, fingerprint_);
  EXPECT_EQ(result.status, snap::RestoreStatus::VersionMismatch);
  EXPECT_EQ(result.evalEntries, 0u);
}

TEST_F(SnapshotTest, BadMagicIsCorrupt) {
  writeWarmSnapshot(fingerprint_);
  std::string bytes = readFile();
  bytes[0] = 'X';
  writeFile(bytes);

  ExplorationService service;
  EXPECT_EQ(service.restoreSnapshot(path_, fingerprint_).status,
            snap::RestoreStatus::Corrupt);
}

TEST_F(SnapshotTest, DifferentEnumerationOptionsColdStartIdentically) {
  const auto cold = writeWarmSnapshot(fingerprint_);

  // A snapshot written under different spec-defining enumeration defaults
  // presents a different fingerprint: the restore must refuse it...
  stt::EnumerationOptions other;
  other.maxEntry = 2;
  const std::string otherPrint = snap::cacheSchemaFingerprint(other);
  ASSERT_NE(otherPrint, fingerprint_);

  stt::clearCandidateCache();
  ExplorationService service;
  const auto result = service.restoreSnapshot(path_, otherPrint);
  EXPECT_EQ(result.status, snap::RestoreStatus::ConfigMismatch);
  EXPECT_EQ(result.evalEntries, 0u);
  // ...and the cold service still answers bit-identically.
  expectSameResults(cold, service.runBatch(smallBatch()));
}

TEST_F(SnapshotTest, RestoredServiceMatchesNeverSnapshottedService) {
  writeWarmSnapshot(fingerprint_);

  stt::clearCandidateCache();
  ExplorationService restored;
  ASSERT_TRUE(restored.restoreSnapshot(path_, fingerprint_).restored());
  const auto warm = restored.runBatch(smallBatch());

  stt::clearCandidateCache();
  ExplorationService pristine;  // differential reference: never snapshotted
  expectSameResults(pristine.runBatch(smallBatch()), warm);
}

TEST_F(SnapshotTest, InjectedWriteFailureLeavesNoFile) {
  support::FaultInjector::instance().arm("snapshot_write=fail");
  ExplorationService service;
  service.runBatch(smallBatch());
  EXPECT_FALSE(service.saveSnapshot(path_, fingerprint_));
  EXPECT_TRUE(readFile().empty());  // nothing written, nothing clobbered
}

TEST_F(SnapshotTest, InjectedCorruptionIsCaughtOnRestore) {
  support::FaultInjector::instance().arm("snapshot_write=corrupt");
  {
    ExplorationService service;
    service.runBatch(smallBatch());
    EXPECT_TRUE(service.saveSnapshot(path_, fingerprint_));
  }
  support::FaultInjector::instance().disarm();
  ExplorationService service;
  EXPECT_EQ(service.restoreSnapshot(path_, fingerprint_).status,
            snap::RestoreStatus::Corrupt);
}

TEST_F(SnapshotTest, InjectedTruncationIsCaughtOnRestore) {
  support::FaultInjector::instance().arm("snapshot_write=truncate");
  {
    ExplorationService service;
    service.runBatch(smallBatch());
    EXPECT_TRUE(service.saveSnapshot(path_, fingerprint_));
  }
  support::FaultInjector::instance().disarm();
  ExplorationService service;
  EXPECT_EQ(service.restoreSnapshot(path_, fingerprint_).status,
            snap::RestoreStatus::Corrupt);
}

TEST_F(SnapshotTest, FingerprintEncodesSpecDefiningKnobsOnly) {
  stt::EnumerationOptions a, b;
  EXPECT_EQ(snap::cacheSchemaFingerprint(a), snap::cacheSchemaFingerprint(b));
  b.maxEntry = 3;
  EXPECT_NE(snap::cacheSchemaFingerprint(a), snap::cacheSchemaFingerprint(b));
  b = a;
  b.dropAllUnicast = !b.dropAllUnicast;
  EXPECT_NE(snap::cacheSchemaFingerprint(a), snap::cacheSchemaFingerprint(b));
}

TEST_F(SnapshotTest, CodecRoundtripsScalars) {
  snap::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  const std::string nul("a\0b", 3);  // embedded NUL must survive
  w.str(nul);

  snap::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.14159);
  r.str();
  EXPECT_EQ(r.str(), nul);
  EXPECT_TRUE(r.done());
}

TEST_F(SnapshotTest, ReaderOverrunThrowsInsteadOfReadingGarbage) {
  snap::Writer w;
  w.u32(7);
  snap::Reader r(w.buffer());
  EXPECT_THROW(r.u64(), Error);
  snap::Reader r2(w.buffer());
  r2.u32();
  EXPECT_THROW(r2.u8(), Error);
}

}  // namespace
}  // namespace tensorlib::driver
