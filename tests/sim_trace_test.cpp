// Tests of the tile-trace builder: active-point mapping, injection counts
// per movement rule, demand profiles and output events.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <set>

#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::sim {
namespace {

namespace wl = tensor::workloads;

stt::DataflowSpec gemmSpec(const std::string& label, std::int64_t s) {
  const auto g = wl::gemm(s, s, s);
  auto spec = stt::findDataflowByLabel(g, label);
  EXPECT_TRUE(spec.has_value()) << label;
  return *spec;
}

TEST(Trace, ActivePointCountEqualsTileVolume) {
  const auto spec = gemmSpec("MNK-SST", 4);
  const auto trace = buildTileTrace(spec, {4, 4, 4});
  EXPECT_EQ(trace.active.size(), 64u);
  EXPECT_EQ(trace.cycles, 10);
  EXPECT_EQ(trace.p1Span, 4);
  EXPECT_EQ(trace.p2Span, 4);
}

TEST(Trace, NoTwoMacsShareAPeCycle) {
  for (const char* label : {"MNK-SST", "MNK-MMT", "MNK-STS", "MNK-MTM"}) {
    const auto spec = gemmSpec(label, 4);
    const auto trace = buildTileTrace(spec, {4, 4, 4});
    std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen;
    for (const auto& ap : trace.active)
      EXPECT_TRUE(seen.insert({ap.p1, ap.p2, ap.t}).second) << label;
  }
}

TEST(Trace, SystolicInjectsOncePerElement) {
  // SST: A and B both systolic; every element enters the array exactly once
  // and then hops between PEs.
  const auto spec = gemmSpec("MNK-SST", 4);
  const auto trace = buildTileTrace(spec, {4, 4, 4});
  EXPECT_EQ(trace.injectionWords[0], 16);  // A[m,k]: 4x4 elements
  EXPECT_EQ(trace.injectionWords[1], 16);  // B[n,k]
  EXPECT_EQ(trace.injectionWords[2], 16);  // C: one write per element
}

TEST(Trace, MulticastInjectsOneBusWordPerElement) {
  const auto spec = gemmSpec("MNK-MMT", 4);
  const auto trace = buildTileTrace(spec, {4, 4, 4});
  EXPECT_EQ(trace.injectionWords[0], 16);
  EXPECT_EQ(trace.injectionWords[1], 16);
  for (const auto& inj : trace.injections) EXPECT_TRUE(inj.viaBus);
}

TEST(Trace, UnicastInjectsEveryUse) {
  // Batched-GEMV A is unicast: every MAC needs its own word.
  const auto bg = wl::batchedGemv(4, 4, 4);
  const auto spec = stt::findDataflowByLabel(bg, "MNK-UMM");
  ASSERT_TRUE(spec.has_value());
  const auto trace = buildTileTrace(*spec, {4, 4, 4});
  EXPECT_EQ(trace.injectionWords[0], 64);  // A: volume, no reuse
}

TEST(Trace, StationaryInjectsOncePerElement) {
  const auto spec = gemmSpec("MNK-MST", 4);  // C stationary? M,S,T: B=S, C=T
  const auto trace = buildTileTrace(spec, {4, 4, 4});
  // B systolic: 16; A multicast: 16; C stationary output: 16 writes.
  EXPECT_EQ(trace.totalWords(), 48);
}

TEST(Trace, InjectionCyclesAreWithinSpan) {
  const auto spec = gemmSpec("MNK-SST", 4);
  const auto trace = buildTileTrace(spec, {4, 4, 4});
  for (const auto& inj : trace.injections) {
    EXPECT_GE(inj.cycle, 0);
    EXPECT_LT(inj.cycle, trace.cycles);
    EXPECT_GE(inj.p1, 0);
    EXPECT_LT(inj.p1, trace.p1Span);
  }
}

TEST(Trace, DemandProfileConservesWords) {
  for (const char* label : {"MNK-SST", "MNK-MMT", "MNK-TSS"}) {
    const auto spec = gemmSpec(label, 4);
    const auto trace = buildTileTrace(spec, {4, 4, 4});
    std::int64_t sum = 0;
    for (auto d : trace.demandPerCycle) sum += d;
    EXPECT_EQ(sum, trace.totalWords()) << label;
    EXPECT_GE(trace.peakDemand(), 1) << label;
  }
}

TEST(Trace, OutputEventsOnePerElement) {
  const auto spec = gemmSpec("MNK-SST", 4);
  const auto trace = buildTileTrace(spec, {4, 4, 4});
  EXPECT_EQ(trace.outputs.size(), 16u);  // C[m,n] 4x4
  std::set<linalg::IntVector> elements;
  for (const auto& ev : trace.outputs) elements.insert(ev.element);
  EXPECT_EQ(elements.size(), 16u);
}

TEST(Trace, OutputEventAtLastContributingCycle) {
  // MMT: C[m,n] accumulates over k = t; the write happens at t = K-1.
  const auto spec = gemmSpec("MNK-MMT", 4);
  const auto trace = buildTileTrace(spec, {4, 4, 4});
  for (const auto& ev : trace.outputs) EXPECT_EQ(ev.cycle, 3);
}

TEST(Trace, TileOriginShiftsElementIndices) {
  const auto spec = gemmSpec("MNK-SST", 8);
  linalg::IntVector outer(3, 0);
  const auto trace =
      buildTileTrace(spec, {4, 4, 4}, linalg::IntVector{4, 0, 0}, outer);
  // All output elements have m >= 4.
  for (const auto& ev : trace.outputs) EXPECT_GE(ev.element[0], 4);
}

TEST(Trace, OuterLoopsFixElementIndices) {
  const auto conv = wl::conv2d(4, 4, 6, 6, 3, 3);
  const auto spec = stt::findDataflowByLabel(conv, "KCX-SST");
  ASSERT_TRUE(spec.has_value());
  linalg::IntVector outer(6, 0);
  outer[2] = 2;  // y = 2
  const auto trace =
      buildTileTrace(*spec, {4, 4, 6}, linalg::IntVector{0, 0, 0}, outer);
  for (const auto& ev : trace.outputs) EXPECT_EQ(ev.element[1], 2);  // C[k,y,x]
}

TEST(Trace, Rank2MulticastStationaryInjectsOncePerElement) {
  // TTMc IJK: B[l,j] has a multicast+stationary plane; with l,m outer and
  // fixed, the tile touches J distinct B elements, each broadcast once.
  const auto tt = wl::ttmc(4, 4, 4, 2, 2);
  const auto spec = stt::findDataflowByLabel(tt, "IJK-BBBU");
  ASSERT_TRUE(spec.has_value());
  const auto trace = buildTileTrace(*spec, {4, 4, 4});
  // B[l,j]: j spans 4, l fixed -> 4 elements, one bus word each.
  EXPECT_EQ(trace.injectionWords[1], 4);
  // A[i,l,m]: i spans 4 -> 4 elements.
  EXPECT_EQ(trace.injectionWords[0], 4);
  // D[i,j,k] unicast output: 64 distinct elements, one write each.
  EXPECT_EQ(trace.injectionWords[3], 64);
}

TEST(Movement, SystolicHasStepNoBus) {
  const auto spec = gemmSpec("MNK-SST", 4);
  const auto mv = deriveMovement(spec.tensors()[0].dataflow);  // A systolic
  EXPECT_TRUE(mv.hasStep);
  EXPECT_FALSE(mv.hasBus());
  EXPECT_GT(mv.step[2], 0);  // dt normalized positive
}

TEST(Movement, MulticastHasLineBusNoStep) {
  const auto spec = gemmSpec("MNK-MMT", 4);
  const auto mv = deriveMovement(spec.tensors()[0].dataflow);  // A multicast
  EXPECT_FALSE(mv.hasStep);
  EXPECT_EQ(mv.bus, Movement::Bus::Line);
  EXPECT_EQ(mv.busDir[2], 0);
}

TEST(Movement, StationaryStepsInTimeOnly) {
  const auto spec = gemmSpec("MNK-MMT", 4);
  const auto mv = deriveMovement(spec.tensors()[2].dataflow);  // C stationary
  EXPECT_TRUE(mv.hasStep);
  EXPECT_EQ(mv.step[0], 0);
  EXPECT_EQ(mv.step[1], 0);
  EXPECT_FALSE(mv.hasBus());
}

TEST(Movement, UnicastMovesNothing) {
  const auto bg = wl::batchedGemv(4, 4, 4);
  const auto spec = *stt::findDataflowByLabel(bg, "MNK-UMM");
  const auto mv = deriveMovement(spec.tensors()[0].dataflow);
  EXPECT_FALSE(mv.hasStep);
  EXPECT_FALSE(mv.hasBus());
}

TEST(Movement, Rank2PlanesGetBusAndStep) {
  // TTMc IJK identity: A is multicast+stationary -> line bus + time step;
  // C is a 2-D broadcast -> global bus, no step. (Built explicitly: label
  // search may return a different all-B transform.)
  const auto tt = wl::ttmc(4, 4, 4, 2, 2);
  const auto sel = stt::LoopSelection::byNames(tt, {"i", "j", "k"});
  const stt::SpaceTimeTransform ident(
      linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  const auto spec = stt::analyzeDataflow(tt, sel, ident);
  const auto a = deriveMovement(spec.tensors()[0].dataflow);
  EXPECT_TRUE(a.hasStep);
  EXPECT_TRUE(a.hasBus());
  const auto c = deriveMovement(spec.tensors()[2].dataflow);
  EXPECT_FALSE(c.hasStep);
  EXPECT_EQ(c.bus, Movement::Bus::Global);
}

TEST(Movement, SystolicMulticastGetsObliqueStepAndSpatialBus) {
  const auto tt = wl::ttmc(4, 4, 4, 2, 2);
  const auto sel = stt::LoopSelection::byNames(tt, {"i", "j", "k"});
  const stt::SpaceTimeTransform t(
      linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}});
  const auto spec = stt::analyzeDataflow(tt, sel, t);
  const auto mv = deriveMovement(spec.tensors()[2].dataflow);
  ASSERT_TRUE(mv.hasStep);
  EXPECT_GT(mv.step[2], 0);
  EXPECT_TRUE(mv.step[0] != 0 || mv.step[1] != 0);  // moves spatially too
  EXPECT_EQ(mv.bus, Movement::Bus::Line);
  EXPECT_EQ(mv.busDir[2], 0);
}

TEST(Trace, SystolicStrideTwoStillCoversChain) {
  // A skewed transform can give a reuse step of two cycles; the injection
  // count must still be one per element (register chain with depth 2).
  const auto g = wl::gemm(4, 4, 4);
  const stt::SpaceTimeTransform t(
      linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 2, 1}});
  const auto spec = stt::analyzeDataflow(g, stt::LoopSelection(g, {0, 1, 2}), t);
  // A[m,k]: reuse dir e_n -> (0,1,2): systolic with dt=2.
  EXPECT_EQ(spec.tensors()[0].dataflow.direction, (linalg::IntVector{0, 1, 2}));
  const auto trace = buildTileTrace(spec, {4, 4, 4});
  EXPECT_EQ(trace.injectionWords[0], 16);
}

}  // namespace
}  // namespace tensorlib::sim
