// Behavioral simulator tests: functional equivalence against the reference
// executor across workloads and dataflow classes, bandwidth-stall modeling,
// and structural invariants.
#include "sim/dfsim.hpp"

#include <gtest/gtest.h>

#include "stt/enumerate.hpp"
#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::sim {
namespace {

namespace wl = tensor::workloads;

void expectFunctionalMatch(const tensor::TensorAlgebra& algebra,
                           const std::string& label, std::int64_t rows,
                           std::int64_t cols) {
  const auto spec = stt::findDataflowByLabel(algebra, label);
  ASSERT_TRUE(spec.has_value()) << label;
  stt::ArrayConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  const auto env = tensor::makeRandomInputs(algebra, 5);
  const auto result = simulate(*spec, cfg, &env);
  const auto golden = tensor::referenceExecute(algebra, env);
  EXPECT_EQ(result.output.maxAbsDiff(golden), 0.0)
      << label << " functional mismatch";
  EXPECT_EQ(result.macs, algebra.totalMacs()) << label;
}

TEST(Dfsim, GemmAllRankOneDataflowsMatchReference) {
  const auto g = wl::gemm(6, 6, 6);
  for (const char* label : {"MNK-SST", "MNK-STS", "MNK-MMT", "MNK-MTM",
                            "MNK-MST", "MNK-TSS", "MNK-SSM", "MNK-MSM"})
    expectFunctionalMatch(g, label, 4, 4);
}

TEST(Dfsim, BatchedGemvMatchesReference) {
  const auto bg = wl::batchedGemv(5, 5, 5);
  for (const char* label : {"MNK-USS", "MNK-UMM", "MNK-UST", "MNK-UTS"})
    expectFunctionalMatch(bg, label, 4, 4);
}

TEST(Dfsim, ConvDataflowsMatchReference) {
  const auto conv = wl::conv2d(4, 4, 5, 5, 3, 3);
  for (const char* label : {"KCX-SST", "KCX-STS", "KCX-STM", "XPQ-MMB"})
    expectFunctionalMatch(conv, label, 4, 4);
}

TEST(Dfsim, DepthwiseMatchesReference) {
  const auto dw = wl::depthwiseConv(4, 5, 5, 3, 3);
  expectFunctionalMatch(dw, "KXY-UBU", 4, 4);
  expectFunctionalMatch(dw, "KYX-UBU", 4, 4);
}

TEST(Dfsim, MttkrpMatchesReference) {
  const auto mt = wl::mttkrp(4, 4, 4, 4);
  for (const char* label : {"IKL-UBBB", "IJK-SSBT", "JKL-SSTB"})
    expectFunctionalMatch(mt, label, 4, 4);
}

TEST(Dfsim, TtmcMatchesReference) {
  const auto tt = wl::ttmc(4, 4, 4, 3, 3);
  for (const char* label : {"IJK-BBBU", "ILM-UBBB", "IKL-SBBS"})
    expectFunctionalMatch(tt, label, 4, 4);
}

TEST(Dfsim, MultiTileProblemsMatchReference) {
  // Problem larger than the array: tiles + remainders in every loop.
  const auto g = wl::gemm(7, 9, 5);
  for (const char* label : {"MNK-SST", "MNK-MMT"})
    expectFunctionalMatch(g, label, 3, 3);
}

TEST(Dfsim, ServeCyclesUnlimitedBandwidth) {
  EXPECT_EQ(serveCycles({4, 4, 4}, 1e9), 3);
}

TEST(Dfsim, ServeCyclesBacklogExtendsFinish) {
  // 12 words at 2 words/cycle takes 6 cycles even though compute is 3.
  EXPECT_EQ(serveCycles({4, 4, 4}, 2.0), 6);
}

TEST(Dfsim, ServeCyclesLateBurst) {
  // Burst on the last cycle: 10 words arriving at t=2 drain at 2/cycle,
  // finishing at cycle 2 + 5 = 7.
  EXPECT_EQ(serveCycles({0, 0, 10}, 2.0), 7);
}

TEST(Dfsim, BandwidthBoundUnicastIsSlower) {
  const auto bg = wl::batchedGemv(8, 8, 8);
  const auto spec = stt::findDataflowByLabel(bg, "MNK-UMM");
  ASSERT_TRUE(spec.has_value());
  stt::ArrayConfig rich, poor;
  rich.rows = rich.cols = poor.rows = poor.cols = 8;
  rich.bandwidthGBps = 1000.0;
  poor.bandwidthGBps = 8.0;
  SimOptions opts;
  opts.functional = false;
  const auto fast = simulate(*spec, rich, nullptr, opts);
  const auto slow = simulate(*spec, poor, nullptr, opts);
  EXPECT_GT(slow.cycles, fast.cycles);
  EXPECT_EQ(slow.computeCycles, fast.computeCycles);
}

TEST(Dfsim, UtilizationBounded) {
  const auto g = wl::gemm(16, 16, 16);
  const auto spec = stt::findDataflowByLabel(g, "MNK-MMT");
  ASSERT_TRUE(spec.has_value());
  stt::ArrayConfig cfg;
  SimOptions opts;
  opts.functional = false;
  const auto r = simulate(*spec, cfg, nullptr, opts);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0);
}

TEST(Dfsim, FunctionalWithoutEnvThrows) {
  const auto g = wl::gemm(4, 4, 4);
  const auto spec = stt::findDataflowByLabel(g, "MNK-MMT");
  stt::ArrayConfig cfg;
  EXPECT_THROW(simulate(*spec, cfg, nullptr), Error);
}

// Property sweep: every enumerated GEMM dataflow must be functionally
// correct — the strongest end-to-end statement about the generator's
// dataflow analysis.
class DfsimEnumeratedGemmTest : public ::testing::TestWithParam<int> {};

TEST_P(DfsimEnumeratedGemmTest, EnumeratedDesignsAreFunctionallyCorrect) {
  const auto g = wl::gemm(5, 5, 5);
  const auto specs =
      stt::enumerateTransforms(g, stt::LoopSelection(g, {0, 1, 2}));
  const auto env = tensor::makeRandomInputs(g, 17);
  const auto golden = tensor::referenceExecute(g, env);
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  // Shard the space across parameterized instances to keep each test fast.
  const std::size_t shards = 8;
  const std::size_t shard = static_cast<std::size_t>(GetParam());
  for (std::size_t i = shard; i < specs.size(); i += shards) {
    const auto result = simulate(specs[i], cfg, &env);
    EXPECT_EQ(result.output.maxAbsDiff(golden), 0.0)
        << specs[i].describe() << " functional mismatch";
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, DfsimEnumeratedGemmTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace tensorlib::sim
