// Cost-model tests: structural inventories (cross-checked against the
// generated netlists), ASIC area/power ranges and orderings (Fig. 6), and
// the FPGA resource model (Table III).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arch/generator.hpp"
#include "workload_samples.hpp"
#include "cost/fpga.hpp"
#include "cost/netlist_cost.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::cost {
namespace {

namespace wl = tensor::workloads;

stt::DataflowSpec gemm16(const std::string& label) {
  const auto g = wl::gemm(256, 256, 256);
  auto spec = stt::findDataflowByLabel(g, label);
  EXPECT_TRUE(spec.has_value()) << label;
  return *spec;
}

TEST(Inventory, SstStructure) {
  stt::ArrayConfig cfg;  // 16x16
  const auto inv = deriveInventory(gemm16("MNK-SST"), cfg, 16);
  EXPECT_EQ(inv.pes, 256);
  EXPECT_EQ(inv.multipliers, 256);
  // A and B systolic with dt=1: (16+1)-bit hops on 240 interior PEs each,
  // plus C's per-PE double buffer.
  EXPECT_EQ(inv.dataRegBits, 2 * 240 * 17 + 2 * 256 * 16);
  EXPECT_EQ(inv.accumAdders, 256);  // stationary output accumulators
  EXPECT_EQ(inv.treeAdders, 0);
  EXPECT_EQ(inv.stationaryPes, 256);
}

TEST(Inventory, MulticastStructure) {
  stt::ArrayConfig cfg;
  const auto inv = deriveInventory(gemm16("MNK-MMT"), cfg, 16);
  EXPECT_EQ(inv.busLines, 32);  // 16 row buses + 16 column buses
  EXPECT_EQ(inv.busTaps, 512);
  EXPECT_EQ(inv.treeAdders, 0);  // output stationary, no tree
}

TEST(Inventory, ReductionTreeStructure) {
  stt::ArrayConfig cfg;
  const auto inv = deriveInventory(gemm16("MNK-SSM"), cfg, 16);
  EXPECT_EQ(inv.treeAdders, 256 - 16);  // 16 lines, 15 adders each
}

TEST(Inventory, MatchesGeneratedNetlistRegisterBits) {
  // The analytic inventory must agree with the actual generated netlist on
  // datapath register bits for pure-systolic designs (no controller or
  // port-boundary registers in the analytic count).
  const auto g = wl::gemm(4, 4, 4);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto acc = arch::generateAccelerator(*spec, cfg);
  const auto inv = deriveInventory(*spec, cfg, 16);
  // Netlist extra: the 32-bit controller counter. Datapath regs: A,B chain
  // hops on interior PEs (17 bits each) + C acc+drain (16 bits x 2 x 16).
  EXPECT_EQ(acc.netlist.regBits(), inv.dataRegBits + 32);
}

TEST(Asic, GemmSpaceLandsInPaperRanges) {
  // Fig. 6(a): 16x16 INT16 GEMM designs: area 0.75-0.875 mm², power
  // 35-63 mW. Enforce a slightly padded envelope.
  const auto g = wl::gemm(256, 256, 256);
  const auto specs = stt::enumerateTransforms(g, stt::LoopSelection(g, {0, 1, 2}));
  ASSERT_GT(specs.size(), 50u);
  stt::ArrayConfig cfg;
  double minA = 1e9, maxA = 0, minP = 1e9, maxP = 0;
  for (const auto& s : specs) {
    const auto rep = estimateAsic(s, cfg, 16);
    minA = std::min(minA, rep.areaMm2);
    maxA = std::max(maxA, rep.areaMm2);
    minP = std::min(minP, rep.powerMw);
    maxP = std::max(maxP, rep.powerMw);
  }
  EXPECT_GT(minA, 0.60);
  EXPECT_LT(maxA, 1.00);
  EXPECT_GT(minP, 25.0);
  EXPECT_LT(maxP, 75.0);
  // Paper: power spread (~1.8x) exceeds area spread (~1.16x).
  EXPECT_GT(maxP / minP, 1.4);
  EXPECT_LT(maxA / minA, 1.35);
  EXPECT_GT(maxP / minP, maxA / minA);
}

TEST(Asic, DualMulticastCostsMorePowerThanTree) {
  // Paper: "dataflow with two multicast input (MMT, MMS) consumes more
  // energy... reduction tree output dataflow doesn't cost too much".
  stt::ArrayConfig cfg;
  const auto mmt = estimateAsic(gemm16("MNK-MMT"), cfg, 16);
  const auto ssm = estimateAsic(gemm16("MNK-SSM"), cfg, 16);
  const auto sst = estimateAsic(gemm16("MNK-SST"), cfg, 16);
  EXPECT_GT(mmt.powerMw, ssm.powerMw);
  EXPECT_GT(mmt.powerMw, sst.powerMw);
  EXPECT_LT(ssm.powerMw, mmt.powerMw * 0.9);
}

TEST(Asic, StationaryCostsAreaAndPower) {
  // Paper: "dataflows with stationary tensor also consume more area and
  // energy because of the control signals".
  stt::ArrayConfig cfg;
  const auto tss = estimateAsic(gemm16("MNK-TSS"), cfg, 16);  // A stationary
  const auto ssm = estimateAsic(gemm16("MNK-SSM"), cfg, 16);  // none stationary
  EXPECT_GT(tss.areaMm2, ssm.areaMm2 * 0.98);
  EXPECT_GT(tss.powerMw + 1e-9, ssm.powerMw * 0.9);
}

TEST(Asic, ReportString) {
  stt::ArrayConfig cfg;
  const auto rep = estimateAsic(gemm16("MNK-SST"), cfg, 16);
  EXPECT_NE(rep.str().find("area="), std::string::npos);
}

TEST(NetlistCost, CountsMatchGeneratedStructure) {
  const auto g = wl::gemm(8, 8, 8);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const auto acc = arch::generateAccelerator(*spec, cfg);
  const auto price = priceNetlist(acc.netlist);
  EXPECT_EQ(price.multipliers, 64);             // one MAC per PE
  EXPECT_EQ(price.regBits, acc.netlist.regBits());
  EXPECT_GT(price.adders, 64);                  // accumulators + controller
  EXPECT_GT(price.areaMm2, 0.0);
  EXPECT_GT(price.powerMw, 0.0);
}

TEST(NetlistCost, TracksAnalyticModelOnDatapath) {
  // The netlist-derived datapath price must sit within the analytic
  // estimate (which additionally carries buses, banks, clocking and PE
  // overhead) — a structural cross-check between the two accountings.
  const auto g = wl::gemm(16, 16, 16);
  stt::ArrayConfig cfg;
  for (const char* label : {"MNK-SST", "MNK-MMT", "MNK-STS", "MNK-SSM"}) {
    const auto spec = stt::findDataflowByLabel(g, label);
    const auto acc = arch::generateAccelerator(*spec, cfg);
    const auto netlistPrice = priceNetlist(acc.netlist);
    const auto analytic = estimateAsic(*spec, cfg, 16);
    EXPECT_LT(netlistPrice.areaMm2, analytic.areaMm2) << label;
    EXPECT_GT(netlistPrice.areaMm2, 0.35 * analytic.areaMm2) << label;
    EXPECT_LT(netlistPrice.powerMw, analytic.powerMw) << label;
  }
}

TEST(Fpga, TableThreeShape) {
  // TensorLib row of Table III: 10x16 array, vec 8, FP32, MM workload.
  const auto g = wl::gemm(1024, 1024, 1024);
  const auto spec = stt::findDataflowByLabel(g, "MNK-STS");  // weight-stationary
  ASSERT_TRUE(spec.has_value());
  stt::ArrayConfig arr;
  arr.rows = 10;
  arr.cols = 16;
  arr.bandwidthGBps = 512.0;  // on-chip banks feed the array directly
  arr.dataBytes = 4;
  FpgaConfig fc;
  const auto rep = estimateFpga(*spec, arr, fc);
  // Paper: LUT 68%, DSP 75%, BRAM 51%, 263 MHz, 673 Gop/s. Model targets
  // the same regime.
  EXPECT_NEAR(rep.dspPct, 75.0, 3.0);
  EXPECT_NEAR(rep.lutPct, 68.0, 10.0);
  EXPECT_NEAR(rep.bramPct, 51.0, 12.0);
  EXPECT_NEAR(rep.frequencyMHz, 263.0, 1.0);
  EXPECT_GT(rep.gops, 600.0);
  EXPECT_LT(rep.gops, 700.0);
}

TEST(Fpga, PlacementOptimizationRaisesFrequency) {
  // §VI-C: AutoBridge-style floorplanning lifts the MM design to ~328 MHz.
  const auto g = wl::gemm(1024, 1024, 1024);
  const auto spec = stt::findDataflowByLabel(g, "MNK-STS");
  stt::ArrayConfig arr;
  arr.rows = 10;
  arr.cols = 16;
  arr.bandwidthGBps = 512.0;
  arr.dataBytes = 4;
  FpgaConfig fc;
  fc.placementOptimized = true;
  const auto rep = estimateFpga(*spec, arr, fc);
  EXPECT_NEAR(rep.frequencyMHz, 328.0, 2.0);
}

TEST(Fpga, MulticastLowersFrequency) {
  const auto g = wl::gemm(256, 256, 256);
  stt::ArrayConfig arr;
  arr.bandwidthGBps = 512.0;
  FpgaConfig fc;
  const auto sys = estimateFpga(*stt::findDataflowByLabel(g, "MNK-SST"), arr, fc);
  const auto mc = estimateFpga(*stt::findDataflowByLabel(g, "MNK-MMT"), arr, fc);
  EXPECT_GT(sys.frequencyMHz, mc.frequencyMHz);
}

TEST(Fpga, ReportSurfaceMatchesAsicReport) {
  // The FPGA report carries the same summary surface as the ASIC one —
  // power in mW, a scalar area axis, the derived inventory — so the
  // CostBackend interface needs no per-backend special cases.
  const auto g = wl::gemm(64, 64, 64);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  stt::ArrayConfig arr;
  arr.rows = arr.cols = 8;
  const auto rep = estimateFpga(*spec, arr, FpgaConfig{});
  EXPECT_GT(rep.powerMw, 0.0);
  EXPECT_EQ(rep.inventory.pes, 64);
  EXPECT_GT(rep.inventory.multipliers, 0);
  const CostFigures f = rep.figures();
  EXPECT_EQ(f.powerMw, rep.powerMw);
  EXPECT_GT(f.area, 0.0);
  EXPECT_DOUBLE_EQ(
      f.area, std::max({rep.lutPct, rep.dspPct, rep.bramPct}) / 100.0);
  EXPECT_NE(rep.str().find("mW"), std::string::npos);
}

TEST(Fpga, WordSizeFollowsDatapathNotCallerConfig) {
  // Unit fix: an FP32 datapath moves 4-byte words through the bandwidth
  // model even when the caller leaves ArrayConfig::dataBytes at the INT16
  // default — the stale field used to double the deliverable words/cycle.
  const auto g = wl::gemm(256, 256, 256);
  const auto spec = stt::findDataflowByLabel(g, "MNK-STS");
  stt::ArrayConfig stale;  // dataBytes = 2
  stt::ArrayConfig correct;
  correct.dataBytes = 4;
  FpgaConfig fc;  // fp32 = true
  const auto a = estimateFpga(*spec, stale, fc);
  const auto b = estimateFpga(*spec, correct, fc);
  EXPECT_DOUBLE_EQ(a.gops, b.gops);
  EXPECT_DOUBLE_EQ(a.powerMw, b.powerMw);
}

// ---- table-driven coverage over the scenario library -----------------------

using ::tensorlib::testing::cappedSpecs;

TEST(CostTableDriven, EveryWorkloadPricesOnBothBackends) {
  stt::ArrayConfig arr;
  arr.rows = arr.cols = 8;
  FpgaConfig fc;
  for (const auto& w : wl::allWorkloads()) {
    const auto specs = cappedSpecs(w);
    ASSERT_FALSE(specs.empty()) << w.name;
    for (const auto& spec : specs) {
      const auto asic = estimateAsic(spec, arr, 16);
      EXPECT_TRUE(std::isfinite(asic.areaMm2) && asic.areaMm2 > 0.0)
          << w.name << " " << spec.label();
      EXPECT_TRUE(std::isfinite(asic.powerMw) && asic.powerMw > 0.0)
          << w.name << " " << spec.label();
      EXPECT_EQ(asic.inventory.pes, arr.rows * arr.cols) << w.name;

      const auto fpga = estimateFpga(spec, arr, fc);
      EXPECT_GT(fpga.luts, 0) << w.name << " " << spec.label();
      EXPECT_GT(fpga.dsps, 0) << w.name << " " << spec.label();
      EXPECT_GT(fpga.bram, 0) << w.name << " " << spec.label();
      EXPECT_GE(fpga.frequencyMHz, 200.0) << w.name << " " << spec.label();
      EXPECT_LE(fpga.frequencyMHz, 340.0) << w.name << " " << spec.label();
      EXPECT_TRUE(std::isfinite(fpga.powerMw) && fpga.powerMw > 0.0)
          << w.name << " " << spec.label();
      EXPECT_TRUE(std::isfinite(fpga.gops) && fpga.gops >= 0.0)
          << w.name << " " << spec.label();
    }
  }
}

TEST(CostTableDriven, BiggerArrayNeverCostsLess) {
  // Monotonicity sanity on every scenario: growing the array can only add
  // structure — area, power and FPGA resources must not shrink.
  stt::ArrayConfig small;
  small.rows = small.cols = 4;
  stt::ArrayConfig large;
  large.rows = large.cols = 8;
  FpgaConfig fc;
  for (const auto& w : wl::allWorkloads()) {
    const auto specs = cappedSpecs(w);
    for (const auto& spec : specs) {
      const auto a4 = estimateAsic(spec, small, 16);
      const auto a8 = estimateAsic(spec, large, 16);
      EXPECT_GE(a8.areaMm2, a4.areaMm2) << w.name << " " << spec.label();
      EXPECT_GE(a8.powerMw, a4.powerMw) << w.name << " " << spec.label();

      const auto f4 = estimateFpga(spec, small, fc);
      const auto f8 = estimateFpga(spec, large, fc);
      EXPECT_GE(f8.luts, f4.luts) << w.name << " " << spec.label();
      EXPECT_GE(f8.dsps, f4.dsps) << w.name << " " << spec.label();
      EXPECT_GE(f8.bram, f4.bram) << w.name << " " << spec.label();
      EXPECT_GE(f8.powerMw, f4.powerMw) << w.name << " " << spec.label();
    }
  }
}

}  // namespace
}  // namespace tensorlib::cost
