// Unit tests for exact rational arithmetic.
#include "linalg/rational.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace tensorlib::linalg {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.isZero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesNegativeDenominator) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), Error);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(1, 2), Rational(1, 2));
}

TEST(Rational, SignAndAbs) {
  EXPECT_EQ(Rational(-3, 2).sign(), -1);
  EXPECT_EQ(Rational(0).sign(), 0);
  EXPECT_EQ(Rational(5).sign(), 1);
  EXPECT_EQ(Rational(-3, 2).abs(), Rational(3, 2));
}

TEST(Rational, Reciprocal) {
  EXPECT_EQ(Rational(3, 4).reciprocal(), Rational(4, 3));
  EXPECT_EQ(Rational(-2).reciprocal(), Rational(-1, 2));
  EXPECT_THROW(Rational(0).reciprocal(), Error);
}

TEST(Rational, ToInteger) {
  EXPECT_EQ(Rational(6, 3).toInteger(), 2);
  EXPECT_THROW(Rational(1, 2).toInteger(), Error);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3, 2).str(), "3/2");
  EXPECT_EQ(Rational(-4).str(), "-4");
}

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(Lcm, Basics) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 6), 0);
}

TEST(CheckedArith, OverflowThrows) {
  EXPECT_THROW(checkedMul(INT64_MAX, 2), Error);
  EXPECT_THROW(checkedAdd(INT64_MAX, 1), Error);
  EXPECT_EQ(checkedMul(1000, 1000), 1000000);
}

// Property sweep: field axioms on a grid of small rationals.
class RationalFieldTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalFieldTest, AdditionCommutesAndAssociates) {
  const auto [a, b] = GetParam();
  const Rational x(a, 7), y(b, 5), z(a + b, 3);
  EXPECT_EQ(x + y, y + x);
  EXPECT_EQ((x + y) + z, x + (y + z));
  EXPECT_EQ(x * (y + z), x * y + x * z);
}

TEST_P(RationalFieldTest, MultiplicativeInverseRoundTrip) {
  const auto [a, b] = GetParam();
  if (a == 0) GTEST_SKIP();
  const Rational x(a, b == 0 ? 1 : b);
  EXPECT_EQ(x * x.reciprocal(), Rational(1));
}

INSTANTIATE_TEST_SUITE_P(SmallValues, RationalFieldTest,
                         ::testing::Combine(::testing::Range(-3, 4),
                                            ::testing::Range(-3, 4)));

}  // namespace
}  // namespace tensorlib::linalg
