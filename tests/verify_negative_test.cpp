// Negative paths: malformed algebras must raise tensorlib::Error at
// construction/validation time and never reach the simulators. (The fuzz
// shrinker relies on this: every reduction candidate is revalidated through
// the TensorAlgebra constructor.)
#include <gtest/gtest.h>

#include "sim/dfsim.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"
#include "tensor/reference.hpp"
#include "tensor/workloads.hpp"
#include "verify/fuzz.hpp"

namespace tensorlib {
namespace {

using tensor::AffineAccess;
using tensor::TensorAlgebra;
using tensor::TensorRef;

TensorRef refFor(const std::string& name, std::size_t rank,
                 std::size_t loopCount) {
  linalg::IntMatrix coeff(rank, loopCount);
  for (std::size_t d = 0; d < rank && d < loopCount; ++d) coeff.at(d, d) = 1;
  return TensorRef{name, AffineAccess(std::move(coeff))};
}

TEST(NegativePaths, RankMismatchedAccessThrows) {
  // Access over 2 loops attached to a 3-loop nest.
  EXPECT_THROW(
      TensorAlgebra("bad", {{"i", 2}, {"j", 2}, {"k", 2}}, refFor("O", 2, 3),
                    {refFor("A", 1, 2)}),
      Error);
  EXPECT_THROW(
      TensorAlgebra("bad", {{"i", 2}, {"j", 2}, {"k", 2}}, refFor("O", 2, 2),
                    {refFor("A", 1, 3)}),
      Error);
}

TEST(NegativePaths, ZeroExtentIteratorThrows) {
  EXPECT_THROW(
      TensorAlgebra("bad", {{"i", 0}, {"j", 2}, {"k", 2}}, refFor("O", 2, 3),
                    {refFor("A", 1, 3)}),
      Error);
  EXPECT_THROW(
      TensorAlgebra("bad", {{"i", 2}, {"j", -3}, {"k", 2}}, refFor("O", 2, 3),
                    {refFor("A", 1, 3)}),
      Error);
}

TEST(NegativePaths, EmptyInputsThrow) {
  EXPECT_THROW(TensorAlgebra("bad", {{"i", 2}, {"j", 2}, {"k", 2}},
                             refFor("O", 2, 3), {}),
               Error);
}

TEST(NegativePaths, EmptyLoopNestThrows) {
  EXPECT_THROW(TensorAlgebra("bad", {}, refFor("O", 1, 0), {refFor("A", 1, 0)}),
               Error);
}

TEST(NegativePaths, TooFewLoopsNeverReachEnumeration) {
  // A valid 2-loop algebra exists, but STT selection needs 3 loops: the
  // enumeration front door must reject it before any simulator runs.
  const TensorAlgebra twoLoops("2d", {{"i", 2}, {"j", 2}}, refFor("O", 2, 2),
                               {refFor("A", 2, 2)});
  EXPECT_THROW(stt::allLoopSelections(twoLoops), Error);
}

TEST(NegativePaths, SimulatorRejectsMissingEnvironment) {
  const auto g = tensor::workloads::gemm(4, 4, 4);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  ASSERT_TRUE(spec.has_value());
  // Functional simulation without an environment.
  EXPECT_THROW(sim::simulate(*spec, stt::ArrayConfig{}, nullptr), Error);
  // Reference execution with a missing input tensor.
  tensor::TensorEnv empty;
  EXPECT_THROW(tensor::referenceExecute(g, empty), Error);
}

TEST(NegativePaths, FuzzRejectsUnselectableLoopFloors) {
  verify::FuzzOptions bad;
  bad.minLoops = 2;  // selections need >= 3 loops
  bad.maxLoops = 2;
  EXPECT_THROW(verify::randomAlgebra(1, bad), Error);
}

}  // namespace
}  // namespace tensorlib
