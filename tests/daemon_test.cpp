// Resident-daemon robustness tests: bounded admission with per-client
// fairness, overload shedding, deadline expiry with exact cache-bucket
// accounting, drain-on-shutdown, and snapshot-backed warm restart.
#include "driver/daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "stt/enumerate.hpp"
#include "support/fault.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;

ExploreQuery smallQuery(Objective objective = Objective::Performance) {
  ExploreQuery q(wl::gemm(5, 5, 5));
  q.array.rows = q.array.cols = 4;
  q.objective = objective;
  return q;
}

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override { support::FaultInjector::instance().disarm(); }
  void TearDown() override { support::FaultInjector::instance().disarm(); }
};

TEST_F(DaemonTest, RunOneAnswersLikeABareService) {
  ExplorationDaemon daemon;
  const auto outcome = daemon.runOne("tester", smallQuery());
  ASSERT_TRUE(outcome.has_value());
  ASSERT_FALSE(outcome->failed());

  ExplorationService reference;
  const auto expected = reference.run(smallQuery());
  ASSERT_EQ(outcome->result->frontier.size(), expected.frontier.size());
  for (std::size_t i = 0; i < expected.frontier.size(); ++i) {
    EXPECT_EQ(outcome->result->frontier[i].spec.label(),
              expected.frontier[i].spec.label());
    EXPECT_EQ(outcome->result->frontier[i].perf.totalCycles,
              expected.frontier[i].perf.totalCycles);
  }
}

TEST_F(DaemonTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  // One worker, one queue slot, and every work unit slowed: the first
  // request occupies the worker, the second the queue, the rest must shed.
  support::FaultInjector::instance().arm("work_unit=sleep:20@0");
  DaemonOptions options;
  options.workers = 1;
  options.queueBound = 1;
  options.perClientQueueBound = 1;
  ExplorationDaemon daemon(options);

  std::atomic<int> completions{0};
  auto onDone = [&completions](ExplorationDaemon::Outcome) { ++completions; };

  int accepted = 0, overloaded = 0;
  for (int i = 0; i < 6; ++i) {
    const auto admission = daemon.submit("client", smallQuery(), onDone);
    if (admission == Admission::Accepted) ++accepted;
    if (admission == Admission::Overloaded) ++overloaded;
  }
  EXPECT_GE(accepted, 1);
  EXPECT_GE(overloaded, 1);
  daemon.shutdown();  // drains everything that was admitted
  EXPECT_EQ(completions.load(), accepted);
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(stats.rejectedOverloaded, static_cast<std::uint64_t>(overloaded));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(accepted));
}

TEST_F(DaemonTest, PerClientBoundKeepsOtherClientsAdmissible) {
  support::FaultInjector::instance().arm("work_unit=sleep:50@0");
  DaemonOptions options;
  options.workers = 1;
  options.queueBound = 16;
  options.perClientQueueBound = 1;
  ExplorationDaemon daemon(options);

  auto ignore = [](ExplorationDaemon::Outcome) {};
  // Flood one client past its share.
  int floodAccepted = 0;
  for (int i = 0; i < 4; ++i)
    if (daemon.submit("flooder", smallQuery(), ignore) == Admission::Accepted)
      ++floodAccepted;
  // The flooder saturates its own slot (one running + one queued, plus at
  // most one mid-loop dequeue)...
  EXPECT_LE(floodAccepted, 3);
  // ...but a well-behaved client still gets in under the global bound.
  EXPECT_EQ(daemon.submit("polite", smallQuery(), ignore),
            Admission::Accepted);
  daemon.shutdown();
}

TEST_F(DaemonTest, DeadlineExpiryReturnsPartialWithExactAccounting) {
  support::FaultInjector::instance().arm("work_unit=sleep:30@0");
  ExplorationDaemon daemon;
  auto query = smallQuery();
  query.deadlineMs = 1;
  const auto outcome = daemon.runOne("tester", query);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_FALSE(outcome->failed());
  const auto& r = *outcome->result;
  EXPECT_TRUE(r.timedOut);
  EXPECT_GT(r.cache.skipped, 0u);
  // Every enumerated design lands in exactly one bucket even when the
  // deadline cuts the query short.
  EXPECT_EQ(r.cache.hits + r.cache.misses + r.cache.pruned + r.cache.skipped,
            r.designs);
}

TEST_F(DaemonTest, DefaultDeadlineIsStampedOntoRequests) {
  support::FaultInjector::instance().arm("work_unit=sleep:30@0");
  DaemonOptions options;
  options.defaultDeadlineMs = 1;
  ExplorationDaemon daemon(options);
  const auto outcome = daemon.runOne("tester", smallQuery());
  ASSERT_TRUE(outcome.has_value());
  ASSERT_FALSE(outcome->failed());
  EXPECT_TRUE(outcome->result->timedOut);
  EXPECT_EQ(daemon.stats().timedOut, 1u);
}

TEST_F(DaemonTest, GenerousDeadlineChangesNothing) {
  ExplorationDaemon daemon;
  auto bounded = smallQuery();
  bounded.deadlineMs = 60'000;
  const auto a = daemon.runOne("tester", bounded);
  const auto b = daemon.runOne("tester", smallQuery());
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_FALSE(a->failed() || b->failed());
  EXPECT_FALSE(a->result->timedOut);
  EXPECT_EQ(a->result->cache.skipped, 0u);
  ASSERT_EQ(a->result->frontier.size(), b->result->frontier.size());
  for (std::size_t i = 0; i < a->result->frontier.size(); ++i)
    EXPECT_EQ(a->result->frontier[i].spec.label(),
              b->result->frontier[i].spec.label());
}

TEST_F(DaemonTest, ShutdownDrainsEveryAcceptedRequest) {
  DaemonOptions options;
  options.workers = 2;
  ExplorationDaemon daemon(options);
  std::atomic<int> completions{0};
  int accepted = 0;
  for (int i = 0; i < 8; ++i) {
    const auto admission = daemon.submit(
        "client" + std::to_string(i % 3), smallQuery(),
        [&completions](ExplorationDaemon::Outcome) { ++completions; });
    if (admission == Admission::Accepted) ++accepted;
  }
  daemon.shutdown();
  EXPECT_EQ(completions.load(), accepted);
  // After shutdown, nothing is admitted.
  EXPECT_EQ(daemon.submit("late", smallQuery(),
                          [](ExplorationDaemon::Outcome) {}),
            Admission::ShuttingDown);
}

TEST_F(DaemonTest, ExplorationFailureReachesCallbackNotTerminate) {
  support::FaultInjector::instance().arm("work_unit=throw");
  ExplorationDaemon daemon;
  const auto outcome = daemon.runOne("tester", smallQuery());
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->failed());
  EXPECT_FALSE(outcome->error.empty());
  EXPECT_EQ(daemon.stats().failed, 1u);
  // The daemon keeps serving after a failed query.
  support::FaultInjector::instance().disarm();
  const auto next = daemon.runOne("tester", smallQuery());
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->failed());
}

TEST_F(DaemonTest, SnapshotRoundtripThroughDaemonRestart) {
  const std::string path = "daemon_test_restart.snap";
  std::remove(path.c_str());
  stt::clearCandidateCache();

  DaemonOptions options;
  options.snapshotPath = path;
  std::vector<std::string> coldLabels;
  {
    ExplorationDaemon daemon(options);
    EXPECT_EQ(daemon.restore().status, snapshot::RestoreStatus::Missing);
    const auto outcome = daemon.runOne("tester", smallQuery());
    ASSERT_TRUE(outcome.has_value() && !outcome->failed());
    for (const auto& rep : outcome->result->frontier)
      coldLabels.push_back(rep.spec.label());
    daemon.shutdown();  // writes the snapshot
  }

  stt::clearCandidateCache();
  {
    ExplorationDaemon daemon(options);
    EXPECT_TRUE(daemon.restore().restored());
    EXPECT_GT(daemon.restore().evalEntries, 0u);
    const auto outcome = daemon.runOne("tester", smallQuery());
    ASSERT_TRUE(outcome.has_value() && !outcome->failed());
    ASSERT_EQ(outcome->result->frontier.size(), coldLabels.size());
    for (std::size_t i = 0; i < coldLabels.size(); ++i)
      EXPECT_EQ(outcome->result->frontier[i].spec.label(), coldLabels[i]);
    daemon.shutdown();
  }
  std::remove(path.c_str());
}

TEST_F(DaemonTest, SnapshotTimerWritesWithoutShutdown) {
  const std::string path = "daemon_test_timer.snap";
  std::remove(path.c_str());
  DaemonOptions options;
  options.snapshotPath = path;
  options.snapshotIntervalMs = 10;
  ExplorationDaemon daemon(options);
  ASSERT_TRUE(daemon.runOne("tester", smallQuery()).has_value());
  // Wait until the timer has demonstrably fired at least once.
  for (int i = 0; i < 200 && daemon.stats().snapshotsSaved == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(daemon.stats().snapshotsSaved, 0u);
  daemon.shutdown();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tensorlib::driver
