// Exploration-service stress tests: bit-identical batched results across
// worker counts and cold/warm caches (the PR-1 "deterministic fan-out"
// guarantee lifted to the service layer), cross-query cache accounting,
// bounded-cache eviction, multi-backend queries, and frontier correctness
// against a brute-force reference.
#include "driver/explore_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cost/asic.hpp"
#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;

ExploreQuery gemmQuery(Objective objective = Objective::Performance,
                       cost::BackendKind backend = cost::BackendKind::Asic) {
  ExploreQuery q(wl::gemm(5, 5, 5));
  q.array.rows = q.array.cols = 4;
  q.objective = objective;
  q.backend = backend;
  return q;
}

std::vector<ExploreQuery> mixedBatch() {
  std::vector<ExploreQuery> batch;
  batch.push_back(gemmQuery(Objective::Performance));
  batch.push_back(gemmQuery(Objective::Power));
  batch.push_back(gemmQuery(Objective::EnergyDelay));
  batch.push_back(gemmQuery(Objective::Performance, cost::BackendKind::Fpga));
  {
    ExploreQuery q(wl::batchedGemv(5, 5, 5));
    q.array.rows = q.array.cols = 4;
    q.objective = Objective::Power;
    batch.push_back(q);
  }
  {
    ExploreQuery q(wl::attention(4, 4, 4));
    q.array.rows = q.array.cols = 4;
    q.objective = Objective::EnergyDelay;
    batch.push_back(q);
  }
  return batch;
}

ServiceOptions withThreads(std::size_t threads) {
  ServiceOptions o;
  o.threads = threads;
  o.workUnitSpecs = 32;  // several units per query even on tiny spaces
  return o;
}

/// Cache-accounting tests pin exact hit/miss splits, so they disable the
/// lower-bound pruning pass (whose cut count is a property of the bound's
/// tightness, covered by the pruning tests instead).
ServiceOptions accountingOptions(std::size_t threads) {
  ServiceOptions o = withThreads(threads);
  o.enablePruning = false;
  return o;
}

void expectSameReport(const DesignReport& a, const DesignReport& b) {
  EXPECT_EQ(a.spec.label(), b.spec.label());
  EXPECT_EQ(a.spec.transform().str(), b.spec.transform().str());
  EXPECT_EQ(a.perf.totalCycles, b.perf.totalCycles);
  EXPECT_EQ(a.perf.utilization, b.perf.utilization);
  EXPECT_EQ(a.perf.trafficWords, b.perf.trafficWords);
  EXPECT_EQ(a.backend, b.backend);
  const auto fa = a.figures(), fb = b.figures();
  EXPECT_EQ(fa.powerMw, fb.powerMw);
  EXPECT_EQ(fa.area, fb.area);
}

void expectSameResult(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.designs, b.designs);
  ASSERT_EQ(a.frontier.size(), b.frontier.size());
  for (std::size_t i = 0; i < a.frontier.size(); ++i)
    expectSameReport(a.frontier[i], b.frontier[i]);
  ASSERT_EQ(a.best.has_value(), b.best.has_value());
  if (a.best) expectSameReport(*a.best, *b.best);
}

// --- the determinism stress satellite --------------------------------------

TEST(ServiceDeterminism, BitIdenticalAcrossThreadCountsAndCacheStates) {
  const auto batch = mixedBatch();

  ExplorationService one(withThreads(1));
  const auto cold = one.runBatch(batch);
  const auto warm = one.runBatch(batch);  // same service: cache fully hot

  ExplorationService two(withThreads(2));
  const auto threaded2 = two.runBatch(batch);

  ExplorationService eight(withThreads(8));
  const auto threaded8 = eight.runBatch(batch);
  const auto threaded8warm = eight.runBatch(batch);

  ASSERT_EQ(cold.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expectSameResult(cold[i], warm[i]);
    expectSameResult(cold[i], threaded2[i]);
    expectSameResult(cold[i], threaded8[i]);
    expectSameResult(cold[i], threaded8warm[i]);
    EXPECT_GT(cold[i].designs, 0u);
    EXPECT_FALSE(cold[i].frontier.empty());
    ASSERT_TRUE(cold[i].best.has_value());
  }
}

TEST(ServiceDeterminism, EvaluateAllMatchesEveryThreadCountAndWarmth) {
  const ExploreQuery q = gemmQuery();
  ExplorationService one(withThreads(1));
  ExplorationService eight(withThreads(8));
  const auto a = one.evaluateAll(q);
  const auto b = one.evaluateAll(q);  // warm
  const auto c = eight.evaluateAll(q);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expectSameReport(a[i], b[i]);
    expectSameReport(a[i], c[i]);
  }
}

// --- delegation keeps the legacy exploreAll contract ------------------------

TEST(Service, EvaluateAllMatchesLegacyEnumerateAndEvaluate) {
  const auto algebra = wl::gemm(5, 5, 5);
  stt::ArrayConfig array;
  array.rows = array.cols = 4;

  // The seed Session::exploreAll: enumerate per selection, evaluate inline.
  std::vector<std::string> legacyLabels;
  std::vector<std::int64_t> legacyCycles;
  std::vector<double> legacyPower;
  for (const auto& sel : stt::allLoopSelections(algebra))
    for (const auto& spec : stt::enumerateTransforms(algebra, sel)) {
      legacyLabels.push_back(spec.label());
      legacyCycles.push_back(sim::estimatePerformance(spec, array).totalCycles);
      legacyPower.push_back(cost::estimateAsic(spec, array, 16).powerMw);
    }

  ExploreQuery q(algebra);
  q.array = array;
  ExplorationService service(withThreads(2));
  const auto reports = service.evaluateAll(q);
  ASSERT_EQ(reports.size(), legacyLabels.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].spec.label(), legacyLabels[i]);
    EXPECT_EQ(reports[i].perf.totalCycles, legacyCycles[i]);
    EXPECT_EQ(reports[i].figures().powerMw, legacyPower[i]);
  }
}

// --- cache accounting -------------------------------------------------------

TEST(ServiceCache, RepeatQueryIsAllHits) {
  ExplorationService service(accountingOptions(1));
  const ExploreQuery q = gemmQuery();
  const auto first = service.run(q);
  EXPECT_EQ(first.cache.hits, 0u);
  EXPECT_EQ(first.cache.misses, first.designs);

  const auto second = service.run(q);
  EXPECT_EQ(second.cache.misses, 0u);
  EXPECT_EQ(second.cache.hits, second.designs);

  const auto stats = service.cacheStats();
  EXPECT_EQ(stats.entries, first.designs);
  EXPECT_EQ(stats.hits, first.designs);
  EXPECT_EQ(stats.shards, ServiceOptions{}.shardCount);
}

TEST(ServiceCache, ObjectivesShareEvaluationsWithinOneBatch) {
  ExplorationService service(accountingOptions(1));
  const std::vector<ExploreQuery> batch = {gemmQuery(Objective::Performance),
                                           gemmQuery(Objective::Power),
                                           gemmQuery(Objective::EnergyDelay)};
  const auto results = service.runBatch(batch);
  EXPECT_EQ(results[0].cache.misses, results[0].designs);
  EXPECT_EQ(results[1].cache.hits, results[1].designs);
  EXPECT_EQ(results[2].cache.hits, results[2].designs);
  // Different objectives, same evaluations: identical frontiers (the
  // objective only changes the winner).
  ASSERT_EQ(results[0].frontier.size(), results[1].frontier.size());
  for (std::size_t i = 0; i < results[0].frontier.size(); ++i) {
    expectSameReport(results[0].frontier[i], results[1].frontier[i]);
    expectSameReport(results[0].frontier[i], results[2].frontier[i]);
  }
}

TEST(ServiceCache, SameInitialLoopsDoNotCollideInCache) {
  // Regression: dataflow labels abbreviate loops to initials, so the
  // selections {m,n,ka} and {m,n,kb} of this contraction both label
  // "MNK-..." with identical transform matrices. The evaluation-cache key
  // must still tell them apart (it carries the selected loop indices) or
  // one selection returns the other's cached perf/cost.
  tensor::TensorAlgebra algebra(
      "TwoK", {{"m", 4}, {"n", 4}, {"ka", 4}, {"kb", 8}},
      {"C", tensor::accessFromTerms(4, {{0}, {1}})},
      {{"A", tensor::accessFromTerms(4, {{0}, {2}, {3}})},
       {"B", tensor::accessFromTerms(4, {{1}, {2}, {3}})}});
  stt::ArrayConfig array;
  array.rows = array.cols = 4;

  ExploreQuery q(algebra);
  q.array = array;
  ExplorationService service(accountingOptions(1));
  const auto cached = service.evaluateAll(q);

  std::size_t i = 0;
  for (const auto& sel : stt::allLoopSelections(algebra))
    for (const auto& spec : stt::enumerateTransforms(algebra, sel)) {
      ASSERT_LT(i, cached.size());
      const auto perf = sim::estimatePerformance(spec, array);
      EXPECT_EQ(cached[i].perf.totalCycles, perf.totalCycles)
          << cached[i].spec.label() << " at index " << i;
      EXPECT_EQ(cached[i].perf.utilization, perf.utilization)
          << cached[i].spec.label() << " at index " << i;
      ++i;
    }
  EXPECT_EQ(i, cached.size());
}

TEST(ServiceCache, ClearCacheRestoresMisses) {
  ExplorationService service(accountingOptions(1));
  const ExploreQuery q = gemmQuery();
  service.run(q);
  service.clearCache();
  EXPECT_EQ(service.cacheStats().entries, 0u);
  const auto after = service.run(q);
  EXPECT_EQ(after.cache.hits, 0u);
  EXPECT_EQ(after.cache.misses, after.designs);
}

TEST(ServiceCache, BoundedCacheEvictsButStaysCorrect) {
  ServiceOptions tiny = accountingOptions(1);
  tiny.shardCount = 2;
  tiny.cacheCapacity = 16;  // far below the ~285-spec GEMM space
  ExplorationService small(tiny);
  ExplorationService big(withThreads(1));

  const ExploreQuery q = gemmQuery(Objective::EnergyDelay);
  const auto constrained = small.run(q);
  const auto reference = big.run(q);
  expectSameResult(constrained, reference);

  const auto stats = small.cacheStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 16u);
}

// --- multi-backend ----------------------------------------------------------

TEST(ServiceBackends, FpgaQueriesProduceFpgaReports) {
  ExplorationService service(withThreads(1));
  const auto result = service.run(gemmQuery(Objective::Performance,
                                            cost::BackendKind::Fpga));
  ASSERT_FALSE(result.frontier.empty());
  for (const auto& rep : result.frontier) {
    EXPECT_EQ(rep.backend, cost::BackendKind::Fpga);
    ASSERT_TRUE(rep.fpga.has_value());
    EXPECT_GT(rep.fpga->luts, 0);
    EXPECT_GT(rep.fpga->powerMw, 0.0);
    EXPECT_GT(rep.figures().area, 0.0);
    EXPECT_NE(rep.summary().find("% of device"), std::string::npos);
  }
  ASSERT_TRUE(result.best.has_value());
}

TEST(ServiceBackends, AsicAndFpgaEvaluationsAreCachedSeparately) {
  ExplorationService service(accountingOptions(1));
  const auto asic = service.run(gemmQuery());
  const auto fpga =
      service.run(gemmQuery(Objective::Performance, cost::BackendKind::Fpga));
  EXPECT_EQ(asic.cache.misses, asic.designs);
  EXPECT_EQ(fpga.cache.misses, fpga.designs);  // no cross-backend hits
  EXPECT_EQ(service.cacheStats().entries, asic.designs + fpga.designs);
}

// --- frontier semantics -----------------------------------------------------

TEST(ServiceFrontier, MatchesBruteForceParetoFilter) {
  ExplorationService service(withThreads(1));
  const ExploreQuery q = gemmQuery(Objective::Power);
  const auto all = service.evaluateAll(q);
  const auto result = service.run(q);

  // Brute-force non-dominated filter with the frontier's tie rule (exact
  // cost ties collapse to the smallest enumeration index).
  auto costOf = [](const DesignReport& r) {
    const auto f = r.figures();
    return ParetoCost{static_cast<double>(r.perf.totalCycles), f.powerMw,
                      f.area, r.perf.utilization};
  };
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const ParetoCost ci = costOf(all[i]);
    bool keep = finiteCost(ci);
    for (std::size_t j = 0; keep && j < all.size(); ++j) {
      if (j == i) continue;
      const ParetoCost cj = costOf(all[j]);
      if (dominates(cj, ci)) keep = false;
      if (cj.cycles == ci.cycles && cj.powerMw == ci.powerMw &&
          cj.area == ci.area && j < i)
        keep = false;
    }
    if (keep) expected.push_back(i);
  }

  ASSERT_EQ(result.frontier.size(), expected.size());
  // The frontier is sorted by cost, not index; compare as label sets keyed
  // by the unique transform.
  std::vector<std::string> expectedKeys, actualKeys;
  for (std::size_t i : expected)
    expectedKeys.push_back(all[i].spec.label() + all[i].spec.transform().str());
  for (const auto& rep : result.frontier)
    actualKeys.push_back(rep.spec.label() + rep.spec.transform().str());
  std::sort(expectedKeys.begin(), expectedKeys.end());
  std::sort(actualKeys.begin(), actualKeys.end());
  EXPECT_EQ(expectedKeys, actualKeys);
}

TEST(ServiceFrontier, PowerWinnerRespectsPerformanceBand) {
  ExplorationService service(withThreads(1));
  const ExploreQuery q = gemmQuery(Objective::Power);
  const auto all = service.evaluateAll(q);
  const auto result = service.run(q);
  ASSERT_TRUE(result.best.has_value());
  double bestUtil = 0.0;
  for (const auto& r : all) bestUtil = std::max(bestUtil, r.perf.utilization);
  EXPECT_GE(result.best->perf.utilization, 0.9 * bestUtil);
  // And it is the cheapest design inside the band.
  for (const auto& r : all)
    if (r.perf.utilization >= 0.9 * bestUtil)
      EXPECT_LE(result.best->figures().powerMw, r.figures().powerMw);
}

TEST(ServiceAsync, SubmitMatchesRun) {
  ExplorationService service(withThreads(2));
  const ExploreQuery q = gemmQuery(Objective::EnergyDelay);
  auto future = service.submit(q);
  const auto direct = service.run(q);
  expectSameResult(future.get(), direct);
}

}  // namespace
}  // namespace tensorlib::driver
