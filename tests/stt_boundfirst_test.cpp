// Bound-first branch-and-bound enumeration: admissibility of the
// partial-transform cost bounds, exact/value-set differentials against the
// classic enumerate-then-dedupe pipeline, and the service-level contract
// (designs accounting, blockSpecs default + escape hatch, snapshot flags,
// deadlines).
//
//   * Partial-bound admissibility fuzz (200 random algebras): for every
//     sampled candidate, lowerBoundPartial <= lowerBound(completion) <=
//     true evaluated figures, per axis, on both backends. A violated
//     inequality would let the search cut a frontier resident.
//   * Exact differential: boundFirst with dedupeBySignature=false emits the
//     IDENTICAL spec stream (order, labels, matrices) as the classic
//     engine, at maxEntry 1 and 2.
//   * Value-set differential: with dedupe on, the class quotient keeps
//     different representatives than signature dedupe, but the frontier's
//     (label, cycles, power, area, utilization) value set is equal — at
//     maxEntry 2 on both backends and at maxEntry 3 (small extents) on the
//     ASIC backend, against the uncut classic run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "cost/backend.hpp"
#include "driver/explore_service.hpp"
#include "driver/snapshot.hpp"
#include "stt/block.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"
#include "verify/fuzz.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;

using FrontierValue = std::tuple<std::string, double, double, double, double>;

/// The mode-independent content of a frontier: its unique value tuples.
/// Class-quotient and signature-dedupe keep different representatives (and
/// different tie multiplicities), but labels and evaluated figures are
/// class-determined, so the unique sets must match exactly.
std::set<FrontierValue> frontierValues(const QueryResult& r) {
  std::set<FrontierValue> values;
  for (const DesignReport& d : r.frontier) {
    const auto f = d.figures();
    values.insert({d.spec.label(), static_cast<double>(d.perf.totalCycles),
                   f.powerMw, f.area, d.perf.utilization});
  }
  return values;
}

ExploreQuery gemmQuery(std::int64_t extent, int maxEntry, bool boundFirst,
                       cost::BackendKind backend = cost::BackendKind::Asic) {
  ExploreQuery q(wl::gemm(extent, extent, extent));
  q.backend = backend;
  q.enumeration.maxEntry = maxEntry;
  q.enumeration.boundFirst = boundFirst;
  return q;
}

void expectAxisLE(const cost::CostBound& lo, const cost::CostBound& hi,
                  const char* what) {
  EXPECT_LE(lo.cycles, hi.cycles) << what;
  EXPECT_LE(lo.figures.powerMw, hi.figures.powerMw) << what;
  EXPECT_LE(lo.figures.area, hi.figures.area) << what;
}

TEST(BoundFirst, PartialBoundAdmissibilityFuzz) {
  const auto asic = cost::makeAsicBackend();
  const auto fpga = cost::makeFpgaBackend();
  const stt::ArrayConfig array;
  stt::EnumerationOptions eo;  // maxEntry=1; sampling covers completions
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const tensor::TensorAlgebra algebra = verify::randomAlgebra(seed);
    const auto mats = stt::candidateTransformMatrices(eo);
    const std::size_t stride = std::max<std::size_t>(1, mats->size() / 25);
    for (const stt::LoopSelection& sel : stt::allLoopSelections(algebra)) {
      const auto context = stt::makeSpecContext(algebra, sel);
      const stt::SelectionGeometry geometry =
          stt::makeSelectionGeometry(*context);
      for (std::size_t i = seed % stride; i < mats->size(); i += stride) {
        const linalg::IntMatrix& m = (*mats)[i];
        stt::PartialTransform partial;
        partial.geometry = &geometry;
        for (int j = 0; j < 3; ++j) {
          partial.absRow0[j] = std::llabs(m.at(0, j));
          partial.absRow1[j] = std::llabs(m.at(1, j));
        }
        const stt::DataflowSpec spec =
            stt::analyzeDataflow(context, stt::SpaceTimeTransform(m));
        for (const auto& backend : {asic, fpga}) {
          const cost::CostBound partialBound =
              backend->lowerBoundPartial(partial, array);
          const cost::CostBound fullBound = backend->lowerBound(spec, array);
          expectAxisLE(partialBound, fullBound, "partial > completion bound");
          if (checked % 7 == 0) {
            // Close the chain to the true figures on a subsample (the full
            // evaluation pays for a tile-mapping search).
            const auto perf = backend->estimatePerf(spec, array);
            const auto cost = backend->evaluate(spec, array);
            EXPECT_LE(fullBound.cycles,
                      static_cast<double>(perf.totalCycles));
            EXPECT_LE(fullBound.figures.powerMw, cost.figures.powerMw);
            EXPECT_LE(fullBound.figures.area, cost.figures.area);
          }
        }
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 1000u);
}

TEST(BoundFirst, NoDedupeStreamIsExactlyClassic) {
  for (int maxEntry = 1; maxEntry <= 2; ++maxEntry) {
    const tensor::TensorAlgebra g = wl::gemm(4, 4, 4);
    stt::EnumerationOptions classic;
    classic.maxEntry = maxEntry;
    classic.dedupeBySignature = false;
    stt::EnumerationOptions bound = classic;
    bound.boundFirst = true;
    const auto a = stt::enumerateDesignSpace(g, classic);
    const auto b = stt::enumerateDesignSpace(g, bound);
    ASSERT_EQ(a.size(), b.size()) << "maxEntry=" << maxEntry;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].label(), b[i].label()) << i;
      ASSERT_EQ(a[i].transform().str(), b[i].transform().str()) << i;
    }
  }
}

TEST(BoundFirst, ServiceValueSetMatchesClassicMaxEntry2) {
  for (const auto backend : {cost::BackendKind::Asic, cost::BackendKind::Fpga}) {
    ExplorationService classic{ServiceOptions{}};
    ExplorationService bound{ServiceOptions{}};
    const QueryResult ra = classic.run(gemmQuery(16, 2, false, backend));
    const QueryResult rb = bound.run(gemmQuery(16, 2, true, backend));
    EXPECT_FALSE(ra.timedOut);
    EXPECT_FALSE(rb.timedOut);
    EXPECT_EQ(frontierValues(ra), frontierValues(rb));
    ASSERT_TRUE(ra.best && rb.best);
    EXPECT_EQ(ra.best->perf.totalCycles, rb.best->perf.totalCycles);
    EXPECT_EQ(ra.best->figures().powerMw, rb.best->figures().powerMw);
    EXPECT_EQ(ra.best->figures().area, rb.best->figures().area);
    // The quotient visits every classic candidate (cut or classified), so
    // designs can only shrink through never-visited duplicates.
    EXPECT_GT(rb.designs, 0u);
  }
}

TEST(BoundFirst, ServiceValueSetMatchesClassicMaxEntry3SmallExtents) {
  // The maxEntry=3 differential on a small workload: bound-first (cuts +
  // class quotient) against the uncut classic sweep of the same space.
  ExplorationService classic{ServiceOptions{}};
  ExplorationService bound{ServiceOptions{}};
  const QueryResult ra = classic.run(gemmQuery(4, 3, false));
  const QueryResult rb = bound.run(gemmQuery(4, 3, true));
  EXPECT_FALSE(ra.timedOut);
  EXPECT_FALSE(rb.timedOut);
  EXPECT_EQ(frontierValues(ra), frontierValues(rb));
  ASSERT_TRUE(ra.best && rb.best);
  EXPECT_EQ(ra.best->perf.totalCycles, rb.best->perf.totalCycles);
  EXPECT_EQ(ra.best->figures().powerMw, rb.best->figures().powerMw);
  EXPECT_EQ(ra.best->figures().area, rb.best->figures().area);
}

TEST(BoundFirst, BlockSpecsDefaultsTo64WithScalarEscapeHatch) {
  // Satellite contract: the block pipeline is on by default; 0 remains the
  // scalar escape hatch and produces bit-identical results.
  EXPECT_EQ(ServiceOptions{}.blockSpecs, 64u);
  ServiceOptions scalar;
  scalar.blockSpecs = 0;
  ExplorationService defaulted{ServiceOptions{}};
  ExplorationService escaped{scalar};
  const QueryResult a = defaulted.run(gemmQuery(8, 1, false));
  const QueryResult b = escaped.run(gemmQuery(8, 1, false));
  EXPECT_EQ(a.designs, b.designs);
  ASSERT_EQ(a.frontier.size(), b.frontier.size());
  for (std::size_t i = 0; i < a.frontier.size(); ++i) {
    EXPECT_EQ(a.frontier[i].spec.label(), b.frontier[i].spec.label());
    EXPECT_EQ(a.frontier[i].perf.totalCycles, b.frontier[i].perf.totalCycles);
  }
  // Bound-first also honors the escape hatch (windows fall back to 64).
  const QueryResult c = escaped.run(gemmQuery(8, 1, true));
  const QueryResult d = defaulted.run(gemmQuery(8, 1, true));
  EXPECT_EQ(frontierValues(c), frontierValues(d));
}

TEST(BoundFirst, CandidateMemoKeyAndSnapshotFlagRoundTrip) {
  stt::clearCandidateCache();
  stt::EnumerationOptions bound;
  bound.boundFirst = true;
  (void)stt::candidateTransformMatrices(bound);
  (void)stt::candidateTransformMatrices(stt::EnumerationOptions{});
  const auto exported = stt::exportCandidateCache();
  ASSERT_GE(exported.size(), 2u);
  bool sawBoundFirst = false, sawClassic = false;
  for (const auto& entry : exported) {
    (entry.boundFirst ? sawBoundFirst : sawClassic) = true;
  }
  EXPECT_TRUE(sawBoundFirst);
  EXPECT_TRUE(sawClassic);

  // The flag survives a snapshot save/restore byte-exactly.
  const std::string path = "boundfirst_snapshot_test.bin";
  const std::string fingerprint =
      snapshot::cacheSchemaFingerprint(stt::EnumerationOptions{});
  ExplorationService service{ServiceOptions{}};
  ASSERT_TRUE(service.saveSnapshot(path, fingerprint));
  stt::clearCandidateCache();
  ExplorationService restored{ServiceOptions{}};
  EXPECT_EQ(restored.restoreSnapshot(path, fingerprint).status,
            snapshot::RestoreStatus::Restored);
  bool restoredBoundFirst = false;
  for (const auto& entry : stt::exportCandidateCache())
    if (entry.boundFirst) restoredBoundFirst = true;
  EXPECT_TRUE(restoredBoundFirst);
  std::remove(path.c_str());
}

TEST(BoundFirst, SchemaFingerprintSeparatesBoundFirstDefaults) {
  // Differently-bounded snapshots must degrade to a clean cold start: the
  // schema fingerprint differs when the spec-defining boundFirst default
  // differs, and names the v2 key schema.
  stt::EnumerationOptions classic;
  stt::EnumerationOptions bound;
  bound.boundFirst = true;
  const std::string a = snapshot::cacheSchemaFingerprint(classic);
  const std::string b = snapshot::cacheSchemaFingerprint(bound);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("keys-v2;", 0), 0u) << a;
}

TEST(BoundFirst, DeadlineProducesPartialAccountedResult) {
  // A 1 ms budget on a maxEntry=2 sweep: whatever happens, the result must
  // come back with coherent accounting (the service TL_CHECKs
  // hits + misses + pruned + skipped == designs internally).
  ExplorationService service{ServiceOptions{}};
  ExploreQuery q = gemmQuery(16, 2, true);
  q.deadlineMs = 1;
  const QueryResult r = service.run(q);
  const auto& c = r.cache;
  EXPECT_EQ(c.hits + c.misses + c.pruned + c.skipped, r.designs);
  if (!r.timedOut) EXPECT_EQ(c.skipped, 0u);
}

TEST(BoundFirst, StatsAccounting) {
  // Direct search-level accounting: visited == cut + deduped + emitted on
  // a full (unstopped) sweep, and pruning only ever removes work.
  const tensor::TensorAlgebra g = wl::gemm(8, 8, 8);
  const auto sels = stt::allLoopSelections(g);
  ASSERT_EQ(sels.size(), 1u);
  const auto context = stt::makeSpecContext(g, sels[0]);
  const stt::SelectionGeometry geometry = stt::makeSelectionGeometry(*context);
  stt::EnumerationOptions eo;
  eo.maxEntry = 2;
  eo.boundFirst = true;
  std::size_t emitted = 0;
  stt::BoundFirstHooks hooks;
  hooks.emit = [&](const stt::BoundFirstCandidate&) { ++emitted; };
  const stt::BoundFirstStats st =
      stt::enumerateBoundFirst(context, geometry, eo, hooks);
  EXPECT_FALSE(st.stopped);
  EXPECT_EQ(st.cut, 0u);  // no cut hook installed
  EXPECT_EQ(st.emitted, emitted);
  EXPECT_EQ(st.visited, st.cut + st.deduped + st.emitted);
  EXPECT_GT(st.deduped, 0u);  // the class quotient must collapse something
}

}  // namespace
}  // namespace tensorlib::driver
