// Tests for the flat JSON-line codec behind tools/explore_server batch
// files: accepted shapes, typed accessors, and loud failure on everything
// outside the supported subset.
#include "support/jsonl.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace tensorlib::support {
namespace {

TEST(JsonLine, ParsesTypedFields) {
  const auto obj = parseJsonLine(
      R"({"workload": "gemm", "rows": 8, "bandwidth_gbps": 32.5, )"
      R"("fp32": true, "note": "a \"quoted\" name"})");
  EXPECT_EQ(obj.getString("workload"), "gemm");
  EXPECT_EQ(obj.getInt("rows"), 8);
  EXPECT_DOUBLE_EQ(*obj.getDouble("bandwidth_gbps"), 32.5);
  EXPECT_EQ(obj.getBool("fp32"), true);
  EXPECT_EQ(obj.getString("note"), "a \"quoted\" name");
  EXPECT_FALSE(obj.has("cols"));
  EXPECT_FALSE(obj.getInt("cols").has_value());
}

TEST(JsonLine, EmptyObjectAndNegativeNumbers) {
  EXPECT_TRUE(parseJsonLine("{}").fields().empty());
  const auto obj = parseJsonLine(R"({"x": -3, "y": -2.5})");
  EXPECT_EQ(obj.getInt("x"), -3);
  EXPECT_DOUBLE_EQ(*obj.getDouble("y"), -2.5);
}

TEST(JsonLine, RejectsMalformedInput) {
  EXPECT_THROW(parseJsonLine(""), Error);
  EXPECT_THROW(parseJsonLine("not json"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": 1)"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a" 1})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": 1} trailing)"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": {"nested": 1}})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": [1, 2]})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": 1, "a": 2})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": "unterminated)"), Error);
}

TEST(JsonLine, TypeMismatchesThrowInsteadOfCoercing) {
  const auto obj = parseJsonLine(R"({"s": "abc", "n": 12})");
  EXPECT_THROW(obj.getInt("s"), Error);
  EXPECT_THROW(obj.getBool("s"), Error);
  EXPECT_THROW(obj.getBool("n"), Error);
  EXPECT_EQ(obj.getDouble("n"), 12.0);  // ints read fine as doubles
}

TEST(JsonEscape, RoundTripsControlCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace tensorlib::support
