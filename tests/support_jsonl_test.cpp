// Tests for the flat JSON-line codec behind tools/explore_server batch
// files: accepted shapes, typed accessors, and loud failure on everything
// outside the supported subset.
#include "support/jsonl.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace tensorlib::support {
namespace {

TEST(JsonLine, ParsesTypedFields) {
  const auto obj = parseJsonLine(
      R"({"workload": "gemm", "rows": 8, "bandwidth_gbps": 32.5, )"
      R"("fp32": true, "note": "a \"quoted\" name"})");
  EXPECT_EQ(obj.getString("workload"), "gemm");
  EXPECT_EQ(obj.getInt("rows"), 8);
  EXPECT_DOUBLE_EQ(*obj.getDouble("bandwidth_gbps"), 32.5);
  EXPECT_EQ(obj.getBool("fp32"), true);
  EXPECT_EQ(obj.getString("note"), "a \"quoted\" name");
  EXPECT_FALSE(obj.has("cols"));
  EXPECT_FALSE(obj.getInt("cols").has_value());
}

TEST(JsonLine, EmptyObjectAndNegativeNumbers) {
  EXPECT_TRUE(parseJsonLine("{}").fields().empty());
  const auto obj = parseJsonLine(R"({"x": -3, "y": -2.5})");
  EXPECT_EQ(obj.getInt("x"), -3);
  EXPECT_DOUBLE_EQ(*obj.getDouble("y"), -2.5);
}

TEST(JsonLine, RejectsMalformedInput) {
  EXPECT_THROW(parseJsonLine(""), Error);
  EXPECT_THROW(parseJsonLine("not json"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": 1)"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a" 1})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": 1} trailing)"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": {"nested": 1}})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": [1, 2]})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": 1, "a": 2})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": "unterminated)"), Error);
}

TEST(JsonLine, TypeMismatchesThrowInsteadOfCoercing) {
  const auto obj = parseJsonLine(R"({"s": "abc", "n": 12})");
  EXPECT_THROW(obj.getInt("s"), Error);
  EXPECT_THROW(obj.getBool("s"), Error);
  EXPECT_THROW(obj.getBool("n"), Error);
  EXPECT_EQ(obj.getDouble("n"), 12.0);  // ints read fine as doubles
}

TEST(JsonLine, RecordsValueKindAtParseTime) {
  // A number-shaped STRING is still a string: the quotes were part of the
  // input, and the typed accessors must not quietly coerce across kinds.
  const auto obj = parseJsonLine(R"({"rows": "8", "flag": true, "n": 3})");
  EXPECT_EQ(obj.getString("rows"), "8");
  EXPECT_THROW(obj.getInt("rows"), Error);
  EXPECT_THROW(obj.getDouble("rows"), Error);
  try {
    obj.getInt("rows");
    FAIL() << "kind mismatch did not throw";
  } catch (const Error& e) {
    // The message names the field, both kinds, and the offending text.
    const std::string what = e.what();
    EXPECT_NE(what.find("rows"), std::string::npos) << what;
    EXPECT_NE(what.find("string"), std::string::npos) << what;
    EXPECT_NE(what.find("number"), std::string::npos) << what;
    EXPECT_NE(what.find("8"), std::string::npos) << what;
  }
  EXPECT_THROW(obj.getString("flag"), Error);
  EXPECT_THROW(obj.getInt("flag"), Error);
  EXPECT_THROW(obj.getString("n"), Error);
  // "true"/"false" as quoted strings are strings, not booleans.
  const auto quoted = parseJsonLine(R"({"b": "true"})");
  EXPECT_THROW(quoted.getBool("b"), Error);
  EXPECT_EQ(quoted.getString("b"), "true");
}

TEST(JsonLine, RejectsNonNumericBareTokensAtParseTime) {
  EXPECT_THROW(parseJsonLine(R"({"a": null})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": nan})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": inf})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": 0x10})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": 12abc})"), Error);
  EXPECT_THROW(parseJsonLine(R"({"a": True})"), Error);
}

TEST(JsonLine, NonIntegralNumbersRejectedByGetInt) {
  const auto obj = parseJsonLine(R"({"x": 8.5, "big": 99999999999999999999})");
  EXPECT_THROW(obj.getInt("x"), Error);
  EXPECT_DOUBLE_EQ(*obj.getDouble("x"), 8.5);
  EXPECT_THROW(obj.getInt("big"), Error);  // out of int64 range
}

TEST(JsonLine, DoubleUnderflowIsAcceptedOverflowIsNot) {
  // 1e-320 is subnormal: strtod reports ERANGE but returns the nearest
  // representable double — which is exactly what the caller asked for.
  const auto sub = parseJsonLine(R"({"v": 1e-320})");
  const double v = *sub.getDouble("v");
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1e-300);
  // Underflow all the way to zero is equally legal.
  EXPECT_EQ(*parseJsonLine(R"({"v": 1e-5000})").getDouble("v"), 0.0);
  EXPECT_EQ(*parseJsonLine(R"({"v": -1e-5000})").getDouble("v"), 0.0);
  // Overflow genuinely loses the value: refuse it, both signs.
  EXPECT_THROW(parseJsonLine(R"({"v": 1e400})").getDouble("v"), Error);
  EXPECT_THROW(parseJsonLine(R"({"v": -1e400})").getDouble("v"), Error);
}

TEST(JsonEscape, RoundTripsControlCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace tensorlib::support
