// tensor::NetworkSpec unit tests: validation (empty, duplicate, degenerate
// layers), the JSONL model loader, the layer-factory table, and the
// built-in model library contract (>= 4 layers, a repeated shape).
#include "tensor/network.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "arch/model.hpp"
#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::tensor {
namespace {

namespace wl = workloads;

NetworkLayer gemmLayer(const std::string& name, std::int64_t m = 4,
                       std::int64_t n = 4, std::int64_t k = 4) {
  return NetworkLayer{name, wl::gemm(m, n, k), false};
}

/// A 2-loop algebra (C[i] += A[i] * B[j]) — below the 3 loops an STT needs.
TensorAlgebra twoLoopAlgebra() {
  return TensorAlgebra(
      "TwoLoop", {{"i", 4}, {"j", 4}},
      TensorRef{"C", accessFromTerms(2, {{0}})},
      {TensorRef{"A", accessFromTerms(2, {{0}})},
       TensorRef{"B", accessFromTerms(2, {{1}})}});
}

TEST(NetworkSpecTest, ValidNetwork) {
  const NetworkSpec net("pair", {gemmLayer("a"), gemmLayer("b", 8, 8, 8)});
  EXPECT_EQ(net.name(), "pair");
  EXPECT_EQ(net.layerCount(), 2u);
  EXPECT_EQ(net.totalMacs(), 4 * 4 * 4 + 8 * 8 * 8);
  EXPECT_NE(net.str().find("a: GEMM"), std::string::npos);
}

TEST(NetworkSpecTest, RejectsEmptyNetwork) {
  EXPECT_THROW(NetworkSpec("empty", {}), Error);
}

TEST(NetworkSpecTest, RejectsUnnamedLayer) {
  EXPECT_THROW(NetworkSpec("anon", {gemmLayer("")}), Error);
}

TEST(NetworkSpecTest, RejectsDuplicateLayerNames) {
  EXPECT_THROW(NetworkSpec("dup", {gemmLayer("a"), gemmLayer("a")}), Error);
}

TEST(NetworkSpecTest, RejectsDegenerateLayer) {
  EXPECT_THROW(
      NetworkSpec("thin", {NetworkLayer{"two", twoLoopAlgebra(), false}}),
      Error);
}

TEST(NetworkSpecTest, LayerFactoryHonorsExtents) {
  const NetworkLayer layer =
      wl::makeNetworkLayer("fc", "gemm", {{"m", 7}, {"n", 3}, {"k", 5}});
  EXPECT_EQ(layer.name, "fc");
  EXPECT_FALSE(layer.allowAllUnicast);
  EXPECT_EQ(layer.algebra.str(), wl::gemm(7, 3, 5).str());
}

TEST(NetworkSpecTest, LayerFactoryDefaultsMatchScenarioTable) {
  // Unset extents fall back to the scenario-table instance of the workload.
  const NetworkLayer layer = wl::makeNetworkLayer("c", "conv2d", {});
  EXPECT_EQ(layer.algebra.str(), wl::findWorkload("conv2d")->algebra.str());
}

TEST(NetworkSpecTest, LayerFactoryPointwiseAllowsAllUnicast) {
  const NetworkLayer layer =
      wl::makeNetworkLayer("scale", "pointwise-residual", {{"b", 2}});
  EXPECT_TRUE(layer.allowAllUnicast);
}

TEST(NetworkSpecTest, LayerFactoryRejectsUnknowns) {
  EXPECT_THROW(wl::makeNetworkLayer("x", "not-a-workload", {}), Error);
  EXPECT_THROW(wl::makeNetworkLayer("x", "gemm", {{"z", 4}}), Error);
  EXPECT_THROW(wl::makeNetworkLayer("x", "gemm", {{"m", 0}}), Error);
  EXPECT_THROW(wl::makeNetworkLayer("x", "gemm", {{"m", -2}}), Error);
}

TEST(NetworkSpecTest, ParsesJsonlModel) {
  std::istringstream in(
      "{\"model\": \"tiny\"}\n"
      "\n"
      "{\"layer\": \"fc1\", \"workload\": \"gemm\", \"m\": 6, \"n\": 6, "
      "\"k\": 6}\n"
      "{\"layer\": \"scale\", \"workload\": \"pointwise-residual\", "
      "\"b\": 2, \"i\": 4, \"j\": 4}\n");
  const NetworkSpec net = wl::parseNetworkJsonl(in, "fallback");
  EXPECT_EQ(net.name(), "tiny");
  ASSERT_EQ(net.layerCount(), 2u);
  EXPECT_EQ(net.layers()[0].algebra.str(), wl::gemm(6, 6, 6).str());
  EXPECT_TRUE(net.layers()[1].allowAllUnicast);
}

TEST(NetworkSpecTest, JsonlNameFallsBackToSource) {
  std::istringstream in("{\"layer\": \"fc\", \"workload\": \"gemm\"}\n");
  EXPECT_EQ(wl::parseNetworkJsonl(in, "from-source").name(), "from-source");
}

TEST(NetworkSpecTest, JsonlRejectsMalformedLines) {
  {
    std::istringstream in("{\"workload\": \"gemm\"}\n");  // no layer name
    EXPECT_THROW(wl::parseNetworkJsonl(in, "x"), Error);
  }
  {
    std::istringstream in("{\"layer\": \"fc\"}\n");  // no workload
    EXPECT_THROW(wl::parseNetworkJsonl(in, "x"), Error);
  }
  {
    std::istringstream in(
        "{\"layer\": \"fc\", \"workload\": \"gemm\", \"m\": \"big\"}\n");
    EXPECT_THROW(wl::parseNetworkJsonl(in, "x"), Error);
  }
  {
    std::istringstream in("not json\n");
    EXPECT_THROW(wl::parseNetworkJsonl(in, "x"), Error);
  }
  {
    std::istringstream in("");  // zero layers
    EXPECT_THROW(wl::parseNetworkJsonl(in, "x"), Error);
  }
}

TEST(NetworkSpecTest, BuiltinLibraryContract) {
  const auto models = wl::builtinNetworks();
  ASSERT_GE(models.size(), 3u);
  for (const NetworkSpec& model : models) {
    EXPECT_GE(model.layerCount(), 4u) << model.name();
    // Every built-in model repeats at least one layer shape, so composed
    // exploration always has cross-layer cache reuse to demonstrate.
    bool repeated = false;
    for (std::size_t i = 0; i < model.layerCount() && !repeated; ++i)
      for (std::size_t j = i + 1; j < model.layerCount() && !repeated; ++j)
        repeated = model.layers()[i].algebra.str() ==
                   model.layers()[j].algebra.str();
    EXPECT_TRUE(repeated) << model.name();
  }
  ASSERT_NE(wl::findNetwork("resnet-block"), nullptr);
  EXPECT_EQ(wl::findNetwork("resnet-block")->layerCount(), 5u);
  EXPECT_EQ(wl::findNetwork("no-such-model"), nullptr);
}

TEST(NetworkSpecTest, BuiltinLibraryIncludesStitchableDeepModels) {
  ASSERT_GE(wl::builtinNetworks().size(), 6u);
  ASSERT_NE(wl::findNetwork("resnet-deep"), nullptr);
  EXPECT_GE(wl::findNetwork("resnet-deep")->layerCount(), 8u);
  ASSERT_NE(wl::findNetwork("transformer-stack"), nullptr);
  EXPECT_EQ(wl::findNetwork("transformer-stack")->layerCount(), 6u);
  ASSERT_NE(wl::findNetwork("moe-mix"), nullptr);
  EXPECT_EQ(wl::findNetwork("moe-mix")->layerCount(), 5u);
}

TEST(NetworkSpecTest, EveryBuiltinModelChainsEndToEnd) {
  // Each model stitches into one accelerator: every adjacent pair's
  // (producer output, consumer first input) satisfies the chain contract.
  for (const NetworkSpec& model : wl::builtinNetworks()) {
    for (std::size_t l = 1; l < model.layerCount(); ++l) {
      const TensorAlgebra& prev = model.layers()[l - 1].algebra;
      const TensorAlgebra& cur = model.layers()[l].algebra;
      ASSERT_FALSE(cur.inputs().empty()) << model.name();
      EXPECT_TRUE(arch::chainRule(prev.tensorShape(prev.output()),
                                  cur.tensorShape(cur.inputs()[0]))
                      .has_value())
          << model.name() << ": " << model.layers()[l - 1].name << " -> "
          << model.layers()[l].name;
    }
  }
}

TEST(NetworkSpecTest, LayerFactoryTableMatchesMakeNetworkLayer) {
  const auto& table = wl::layerFactoryTable();
  ASSERT_GE(table.size(), 12u);
  for (const wl::LayerFactoryInfo& info : table) {
    ASSERT_EQ(info.params.size(), info.defaults.size()) << info.name;
    // Defaults round-trip: building with no extents equals building with
    // the advertised defaults spelled out.
    const NetworkLayer fromDefaults =
        wl::makeNetworkLayer("t", info.name, {});
    std::vector<std::pair<std::string, std::int64_t>> extents;
    for (std::size_t i = 0; i < info.params.size(); ++i)
      extents.emplace_back(info.params[i], info.defaults[i]);
    const NetworkLayer spelled = wl::makeNetworkLayer("t", info.name, extents);
    EXPECT_EQ(fromDefaults.algebra.str(), spelled.algebra.str()) << info.name;
    EXPECT_EQ(fromDefaults.allowAllUnicast, info.allowAllUnicast) << info.name;
  }
}

}  // namespace
}  // namespace tensorlib::tensor
