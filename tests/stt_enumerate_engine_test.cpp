// Determinism and equivalence tests for the enumeration perf engine: the
// direct-canonical generator with process-wide caching and parallel
// analysis must return byte-identical spec sequences to the legacy serial
// decode-all-and-filter path, across repeated (cache-hitting) calls.
#include "stt/enumerate.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tensor/workloads.hpp"

namespace tensorlib::stt {
namespace {

namespace wl = tensor::workloads;

EnumerationOptions fastOptions(int maxEntry) {
  EnumerationOptions o;
  o.maxEntry = maxEntry;
  return o;  // defaults: direct engine, cached, parallel
}

EnumerationOptions seedOptions(int maxEntry) {
  EnumerationOptions o;
  o.maxEntry = maxEntry;
  o.useLegacyEnumeration = true;
  o.cacheCandidates = false;
  o.parallelAnalyze = false;
  return o;
}

/// Byte-level fingerprint of a spec sequence: order-sensitive.
std::string fingerprint(const std::vector<DataflowSpec>& specs) {
  std::string out;
  for (const auto& s : specs) {
    out += s.label();
    out += '|';
    out += s.signature();
    out += '|';
    const auto& m = s.transform().matrix();
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j)
        out += std::to_string(m.at(i, j)) + ',';
    out += ';';
  }
  return out;
}

TEST(EnumerateEngine, FastMatchesLegacySerialByteIdentical) {
  const auto g = wl::gemm(8, 8, 8);
  const auto fast = enumerateDesignSpace(g, fastOptions(1));
  const auto seed = enumerateDesignSpace(g, seedOptions(1));
  ASSERT_EQ(fast.size(), seed.size());
  EXPECT_EQ(fingerprint(fast), fingerprint(seed));
}

TEST(EnumerateEngine, MultiSelectionAlgebraMatches) {
  const auto mt = wl::mttkrp(6, 6, 6, 6);
  const auto fast = enumerateDesignSpace(mt, fastOptions(1));
  const auto seed = enumerateDesignSpace(mt, seedOptions(1));
  EXPECT_EQ(fingerprint(fast), fingerprint(seed));
}

TEST(EnumerateEngine, NonCanonicalNonUnimodularMatches) {
  const auto g = wl::gemm(4, 4, 4);
  EnumerationOptions fast = fastOptions(1);
  fast.canonicalize = false;
  fast.requireUnimodular = false;
  fast.dedupeBySignature = false;
  EnumerationOptions seed = seedOptions(1);
  seed.canonicalize = false;
  seed.requireUnimodular = false;
  seed.dedupeBySignature = false;
  const LoopSelection sel(g, {0, 1, 2});
  EXPECT_EQ(fingerprint(enumerateTransforms(g, sel, fast)),
            fingerprint(enumerateTransforms(g, sel, seed)));
}

TEST(EnumerateEngine, CachedCallsAreDeterministic) {
  const auto g = wl::gemm(8, 8, 8);
  const auto first = enumerateDesignSpace(g, fastOptions(1));   // may warm cache
  const auto second = enumerateDesignSpace(g, fastOptions(1));  // cache hit
  EXPECT_EQ(fingerprint(first), fingerprint(second));
}

TEST(EnumerateEngine, ParallelAnalyzeMatchesSerial) {
  const auto g = wl::gemm(8, 8, 8);
  EnumerationOptions serial = fastOptions(1);
  serial.parallelAnalyze = false;
  EXPECT_EQ(fingerprint(enumerateDesignSpace(g, fastOptions(1))),
            fingerprint(enumerateDesignSpace(g, serial)));
}

TEST(EnumerateEngine, FindDataflowAgreesAcrossEngines) {
  const auto g = wl::gemm(8, 8, 8);
  for (const std::string label : {"MNK-MTM", "MNK-SST", "MNK-TSS"}) {
    const auto fast = findDataflowByLabel(g, label, fastOptions(1));
    const auto seed = findDataflowByLabel(g, label, seedOptions(1));
    ASSERT_TRUE(fast.has_value() && seed.has_value()) << label;
    EXPECT_TRUE(fast->transform().matrix() == seed->transform().matrix()) << label;
  }
}

}  // namespace
}  // namespace tensorlib::stt
