// Cross-cutting property sweeps over the enumerated design spaces of every
// Table-II workload: the invariants that make the generator trustworthy.
//
//  P1  mapping conserves work: sum of tile MACs x outer iterations equals
//      the algebra's total MAC count, and tile footprints fit the array.
//  P2  trace consistency: active points = tile volume, one MAC per
//      (PE, cycle), demand profile conserves words.
//  P3  letters round-trip: findDataflow(letters) realizes the same letters.
//  P4  behavioral functional correctness on a small instance.
//  P5  RTL functional correctness for netlist-generable designs.
#include <gtest/gtest.h>

#include <set>

#include "arch/testbench.hpp"
#include "sim/dfsim.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib {
namespace {

namespace wl = tensor::workloads;

struct SweepCase {
  const char* name;
  tensor::TensorAlgebra algebra;       ///< small instance for simulation
  std::size_t maxSpecs;                ///< cap per selection for runtime
};

std::vector<SweepCase> sweepCases() {
  return {
      {"gemm", wl::gemm(5, 5, 5), 40},
      {"batched-gemv", wl::batchedGemv(5, 5, 5), 40},
      {"conv2d", wl::conv2d(4, 4, 4, 4, 2, 2), 12},
      {"depthwise", wl::depthwiseConv(4, 4, 4, 2, 2), 12},
      {"mttkrp", wl::mttkrp(4, 4, 4, 4), 12},
      {"ttmc", wl::ttmc(3, 3, 3, 3, 3), 12},
  };
}

class WorkloadSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadSweepTest, MappingConservesWorkAndFits) {
  const SweepCase c = sweepCases()[static_cast<std::size_t>(GetParam())];
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  for (const auto& sel : stt::allLoopSelections(c.algebra)) {
    const auto specs = stt::enumerateTransforms(c.algebra, sel);
    for (std::size_t i = 0; i < std::min(c.maxSpecs, specs.size()); ++i) {
      const auto mapping = stt::computeMapping(specs[i], cfg);
      EXPECT_EQ(mapping.totalMacs(), c.algebra.totalMacs())
          << c.name << " " << specs[i].describe();
      EXPECT_LE(mapping.spatialRowsUsed, cfg.rows) << specs[i].describe();
      EXPECT_LE(mapping.spatialColsUsed, cfg.cols) << specs[i].describe();
      EXPECT_GE(mapping.replication, 1) << specs[i].describe();
    }
  }
}

TEST_P(WorkloadSweepTest, TraceInvariantsHold) {
  const SweepCase c = sweepCases()[static_cast<std::size_t>(GetParam())];
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  for (const auto& sel : stt::allLoopSelections(c.algebra)) {
    const auto specs = stt::enumerateTransforms(c.algebra, sel);
    for (std::size_t i = 0; i < std::min<std::size_t>(8, specs.size()); ++i) {
      const auto mapping = stt::computeMapping(specs[i], cfg);
      const auto trace = sim::buildTileTrace(specs[i], mapping.fullTile);
      // P2a: volume
      EXPECT_EQ(static_cast<std::int64_t>(trace.active.size()),
                mapping.fullTile[0] * mapping.fullTile[1] * mapping.fullTile[2])
          << specs[i].describe();
      // P2b: injectivity
      std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen;
      for (const auto& ap : trace.active)
        EXPECT_TRUE(seen.insert({ap.p1, ap.p2, ap.t}).second)
            << specs[i].describe();
      // P2c: demand conservation
      std::int64_t demand = 0;
      for (auto d : trace.demandPerCycle) demand += d;
      EXPECT_EQ(demand, trace.totalWords()) << specs[i].describe();
      // P2d: every cycle within span
      for (const auto& inj : trace.injections) {
        EXPECT_GE(inj.cycle, 0) << specs[i].describe();
        EXPECT_LT(inj.cycle, trace.cycles) << specs[i].describe();
      }
    }
  }
}

TEST_P(WorkloadSweepTest, LettersRoundTrip) {
  const SweepCase c = sweepCases()[static_cast<std::size_t>(GetParam())];
  const auto sels = stt::allLoopSelections(c.algebra);
  const auto specs = stt::enumerateTransforms(c.algebra, sels.front());
  std::set<std::string> letterSets;
  for (const auto& s : specs) letterSets.insert(s.letters());
  for (const auto& letters : letterSets) {
    const auto found = stt::findDataflow(c.algebra, sels.front(), letters);
    ASSERT_TRUE(found.has_value()) << c.name << " " << letters;
    EXPECT_EQ(found->letters(), letters);
  }
}

TEST_P(WorkloadSweepTest, BehavioralFunctionalCorrectness) {
  const SweepCase c = sweepCases()[static_cast<std::size_t>(GetParam())];
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto env = tensor::makeRandomInputs(c.algebra, 97);
  const auto golden = tensor::referenceExecute(c.algebra, env);
  const auto sels = stt::allLoopSelections(c.algebra);
  // Sweep the first selection fully and one spec from each other selection.
  std::vector<stt::DataflowSpec> specs =
      stt::enumerateTransforms(c.algebra, sels.front());
  if (specs.size() > c.maxSpecs)
    specs.erase(specs.begin() + static_cast<std::ptrdiff_t>(c.maxSpecs),
                specs.end());
  for (std::size_t s = 1; s < sels.size(); ++s) {
    auto extra = stt::enumerateTransforms(c.algebra, sels[s]);
    if (!extra.empty()) specs.push_back(std::move(extra.front()));
  }
  for (const auto& spec : specs) {
    const auto result = sim::simulate(spec, cfg, &env);
    EXPECT_EQ(result.output.maxAbsDiff(golden), 0.0)
        << c.name << " " << spec.describe();
  }
}

TEST_P(WorkloadSweepTest, RtlFunctionalCorrectnessWhereGenerable) {
  const SweepCase c = sweepCases()[static_cast<std::size_t>(GetParam())];
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto env = tensor::makeRandomInputs(c.algebra, 101);
  const auto sels = stt::allLoopSelections(c.algebra);
  std::size_t generated = 0;
  for (const auto& sel : sels) {
    const auto specs = stt::enumerateTransforms(c.algebra, sel);
    for (std::size_t i = 0; i < std::min<std::size_t>(6, specs.size()); ++i) {
      if (specs[i].outputRole().dataflow.reuseRank > 1) continue;
      const auto acc = arch::generateAccelerator(specs[i], cfg);
      const auto run = arch::runAcceleratorTile(acc, env);
      EXPECT_TRUE(run.matches()) << c.name << " " << specs[i].describe();
      ++generated;
    }
  }
  EXPECT_GT(generated, 0u) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweepTest, ::testing::Range(0, 6));

// Traffic-signature property: per-tensor traffic reported by the simulator
// matches the dataflow class expectation on GEMM.
TEST(TrafficSignature, MatchesDataflowClasses) {
  const auto g = wl::gemm(8, 8, 8);
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  sim::SimOptions opts;
  opts.functional = false;

  // Systolic/multicast input: one word per element = 64 per input tensor.
  for (const char* label : {"MNK-SST", "MNK-MMT"}) {
    const auto spec = *stt::findDataflowByLabel(g, label);
    const auto r = sim::simulate(spec, cfg, nullptr, opts);
    EXPECT_EQ(r.tensorTrafficWords[0], 64) << label;
    EXPECT_EQ(r.tensorTrafficWords[1], 64) << label;
    EXPECT_EQ(r.tensorTrafficWords[2], 64) << label;  // output writes
    EXPECT_GT(r.peakDemandWords, 0) << label;
  }

  // Unicast input: one word per MAC = 512.
  const auto bg = wl::batchedGemv(8, 8, 8);
  const auto uspec = *stt::findDataflowByLabel(bg, "MNK-UMM");
  const auto ur = sim::simulate(uspec, cfg, nullptr, opts);
  EXPECT_EQ(ur.tensorTrafficWords[0], 512);
}

}  // namespace
}  // namespace tensorlib
