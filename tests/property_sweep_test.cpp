// Cross-cutting property sweeps over the enumerated design spaces of every
// registered workload scenario (tensor/workloads.hpp allWorkloads()), run
// under BOTH enumeration engines (fast direct-canonical and legacy
// decode-all-and-filter) — the invariants that make the generator
// trustworthy.
//
//  P1  mapping conserves work: sum of tile MACs x outer iterations equals
//      the algebra's total MAC count, and tile footprints fit the array.
//  P2  trace consistency: active points = tile volume, one MAC per
//      (PE, cycle), demand profile conserves words.
//  P3  letters round-trip: findDataflow(letters) realizes the same letters.
//  P4  behavioral functional correctness on a small instance.
//  P5  RTL functional correctness for netlist-generable designs.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "arch/testbench.hpp"
#include "sim/dfsim.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib {
namespace {

namespace wl = tensor::workloads;

/// Param: (index into allWorkloads(), use the legacy enumeration engine).
class WorkloadSweepTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  WorkloadSweepTest()
      : workload_(
            wl::allWorkloads()[static_cast<std::size_t>(std::get<0>(GetParam()))]),
        options_(engineOptions(std::get<1>(GetParam()), workload_)) {}

  static stt::EnumerationOptions engineOptions(bool legacy,
                                               const wl::NamedWorkload& w) {
    stt::EnumerationOptions o;
    o.useLegacyEnumeration = legacy;
    o.dropAllUnicast = !w.allowAllUnicast;
    return o;
  }

  std::vector<stt::DataflowSpec> specsFor(const stt::LoopSelection& sel) const {
    return stt::enumerateTransforms(workload_.algebra, sel, options_);
  }

  const wl::NamedWorkload workload_;
  const stt::EnumerationOptions options_;
};

TEST_P(WorkloadSweepTest, MappingConservesWorkAndFits) {
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  for (const auto& sel : stt::allLoopSelections(workload_.algebra)) {
    const auto specs = specsFor(sel);
    for (std::size_t i = 0; i < std::min(workload_.sweepCap, specs.size());
         ++i) {
      const auto mapping = stt::computeMapping(specs[i], cfg);
      EXPECT_EQ(mapping.totalMacs(), workload_.algebra.totalMacs())
          << workload_.name << " " << specs[i].describe();
      EXPECT_LE(mapping.spatialRowsUsed, cfg.rows) << specs[i].describe();
      EXPECT_LE(mapping.spatialColsUsed, cfg.cols) << specs[i].describe();
      EXPECT_GE(mapping.replication, 1) << specs[i].describe();
    }
  }
}

TEST_P(WorkloadSweepTest, TraceInvariantsHold) {
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  for (const auto& sel : stt::allLoopSelections(workload_.algebra)) {
    const auto specs = specsFor(sel);
    for (std::size_t i = 0; i < std::min<std::size_t>(8, specs.size()); ++i) {
      const auto mapping = stt::computeMapping(specs[i], cfg);
      const auto trace = sim::buildTileTrace(specs[i], mapping.fullTile);
      // P2a: volume
      EXPECT_EQ(static_cast<std::int64_t>(trace.active.size()),
                mapping.fullTile[0] * mapping.fullTile[1] * mapping.fullTile[2])
          << specs[i].describe();
      // P2b: injectivity
      std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen;
      for (const auto& ap : trace.active)
        EXPECT_TRUE(seen.insert({ap.p1, ap.p2, ap.t}).second)
            << specs[i].describe();
      // P2c: demand conservation
      std::int64_t demand = 0;
      for (auto d : trace.demandPerCycle) demand += d;
      EXPECT_EQ(demand, trace.totalWords()) << specs[i].describe();
      // P2d: every cycle within span
      for (const auto& inj : trace.injections) {
        EXPECT_GE(inj.cycle, 0) << specs[i].describe();
        EXPECT_LT(inj.cycle, trace.cycles) << specs[i].describe();
      }
    }
  }
}

TEST_P(WorkloadSweepTest, LettersRoundTrip) {
  const auto sels = stt::allLoopSelections(workload_.algebra);
  const auto specs = specsFor(sels.front());
  std::set<std::string> letterSets;
  for (const auto& s : specs) letterSets.insert(s.letters());
  for (const auto& letters : letterSets) {
    const auto found =
        stt::findDataflow(workload_.algebra, sels.front(), letters, options_);
    ASSERT_TRUE(found.has_value()) << workload_.name << " " << letters;
    EXPECT_EQ(found->letters(), letters);
  }
}

TEST_P(WorkloadSweepTest, BehavioralFunctionalCorrectness) {
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto env = tensor::makeRandomInputs(workload_.algebra, 97);
  const auto golden = tensor::referenceExecute(workload_.algebra, env);
  const auto sels = stt::allLoopSelections(workload_.algebra);
  // Sweep the first selection fully and one spec from each other selection.
  std::vector<stt::DataflowSpec> specs = specsFor(sels.front());
  if (specs.size() > workload_.sweepCap)
    specs.erase(specs.begin() + static_cast<std::ptrdiff_t>(workload_.sweepCap),
                specs.end());
  for (std::size_t s = 1; s < sels.size(); ++s) {
    auto extra = specsFor(sels[s]);
    if (!extra.empty()) specs.push_back(std::move(extra.front()));
  }
  for (const auto& spec : specs) {
    const auto result = sim::simulate(spec, cfg, &env);
    EXPECT_EQ(result.output.maxAbsDiff(golden), 0.0)
        << workload_.name << " " << spec.describe();
  }
}

TEST_P(WorkloadSweepTest, RtlFunctionalCorrectnessWhereGenerable) {
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto env = tensor::makeRandomInputs(workload_.algebra, 101);
  const auto sels = stt::allLoopSelections(workload_.algebra);
  std::size_t generated = 0;
  for (const auto& sel : sels) {
    const auto specs = specsFor(sel);
    for (std::size_t i = 0; i < std::min<std::size_t>(6, specs.size()); ++i) {
      if (specs[i].outputRole().dataflow.reuseRank > 1) continue;
      std::optional<arch::GeneratedAccelerator> acc;
      try {
        acc.emplace(arch::generateAccelerator(specs[i], cfg));
      } catch (const Error& e) {
        // Only the schedule-soundness gate is a legitimate skip; any other
        // generator throw is a regression this sweep must surface.
        const std::string what = e.what();
        if (what.find("unsound schedule") == std::string::npos &&
            what.find("bus conflict") == std::string::npos)
          ADD_FAILURE() << workload_.name << " " << specs[i].describe()
                        << "\nunexpected generator error: " << what;
        continue;
      }
      const auto run = arch::runAcceleratorTile(*acc, env);
      EXPECT_TRUE(run.matches())
          << workload_.name << " " << specs[i].describe();
      ++generated;
    }
  }
  EXPECT_GT(generated, 0u) << workload_.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSweepTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(wl::allWorkloads().size())),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      const auto table = wl::allWorkloads();
      std::string name =
          table[static_cast<std::size_t>(std::get<0>(info.param))].name;
      name += std::get<1>(info.param) ? "_legacy" : "_fast";
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// The registered table must keep covering at least the ISSUE-2 scenario
// floor (the six Table-II algebras plus the extended shapes).
TEST(WorkloadTable, RegistersAtLeastTenScenarios) {
  const auto table = wl::allWorkloads();
  EXPECT_GE(table.size(), 10u);
  std::set<std::string> names;
  for (const auto& w : table) {
    EXPECT_TRUE(names.insert(w.name).second) << "duplicate " << w.name;
    EXPECT_GE(w.algebra.loopCount(), 3u) << w.name;
    EXPECT_EQ(wl::findWorkload(w.name)->algebra.str(), w.algebra.str());
  }
  EXPECT_EQ(wl::findWorkload("no-such-workload"), nullptr);
}

// Traffic-signature property: per-tensor traffic reported by the simulator
// matches the dataflow class expectation on GEMM.
TEST(TrafficSignature, MatchesDataflowClasses) {
  const auto g = wl::gemm(8, 8, 8);
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  sim::SimOptions opts;
  opts.functional = false;

  // Systolic/multicast input: one word per element = 64 per input tensor.
  for (const char* label : {"MNK-SST", "MNK-MMT"}) {
    const auto spec = *stt::findDataflowByLabel(g, label);
    const auto r = sim::simulate(spec, cfg, nullptr, opts);
    EXPECT_EQ(r.tensorTrafficWords[0], 64) << label;
    EXPECT_EQ(r.tensorTrafficWords[1], 64) << label;
    EXPECT_EQ(r.tensorTrafficWords[2], 64) << label;  // output writes
    EXPECT_GT(r.peakDemandWords, 0) << label;
  }

  // Unicast input: one word per MAC = 512.
  const auto bg = wl::batchedGemv(8, 8, 8);
  const auto uspec = *stt::findDataflowByLabel(bg, "MNK-UMM");
  const auto ur = sim::simulate(uspec, cfg, nullptr, opts);
  EXPECT_EQ(ur.tensorTrafficWords[0], 512);
}

}  // namespace
}  // namespace tensorlib
