// Network-level co-exploration tests: shared-array frontier composition
// edge cases (single-layer network == plain exploration, degenerate layers
// rejected), bit-identity across worker counts and cache states, the
// composed-vs-naive differential, cost composition invariants (sum / max),
// and cross-layer cache reuse.
#include "driver/network_explorer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;

stt::ArrayConfig smallArray(std::int64_t rows, std::int64_t cols) {
  stt::ArrayConfig a;
  a.rows = rows;
  a.cols = cols;
  return a;
}

NetworkQuery mlpQuery(std::vector<stt::ArrayConfig> arrays = {smallArray(4, 4),
                                                              smallArray(8, 8)}) {
  NetworkQuery q(*wl::findNetwork("mlp-3"));
  q.arrays = std::move(arrays);
  return q;
}

void expectSameDesign(const NetworkDesign& a, const NetworkDesign& b) {
  EXPECT_EQ(a.arrayIndex, b.arrayIndex);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.cost.cycles, b.cost.cycles);
  EXPECT_EQ(a.cost.powerMw, b.cost.powerMw);
  EXPECT_EQ(a.cost.area, b.cost.area);
  EXPECT_EQ(a.cost.utilization, b.cost.utilization);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].layer, b.layers[l].layer);
    EXPECT_EQ(a.layers[l].dataflow, b.layers[l].dataflow);
    EXPECT_EQ(a.layers[l].cycles, b.layers[l].cycles);
    EXPECT_EQ(a.layers[l].powerMw, b.layers[l].powerMw);
    EXPECT_EQ(a.layers[l].area, b.layers[l].area);
  }
}

void expectSameResult(const NetworkResult& a, const NetworkResult& b) {
  EXPECT_EQ(a.designs, b.designs);
  ASSERT_EQ(a.frontier.size(), b.frontier.size());
  for (std::size_t i = 0; i < a.frontier.size(); ++i)
    expectSameDesign(a.frontier[i], b.frontier[i]);
  ASSERT_EQ(a.best.has_value(), b.best.has_value());
  if (a.best) expectSameDesign(*a.best, *b.best);
}

// A single-layer network on one array is plain exploration wearing the
// network API: same frontier, same labels, same winner.
TEST(NetworkExplorerTest, SingleLayerEqualsPlainExploration) {
  NetworkQuery query(tensor::NetworkSpec(
      "solo", {tensor::NetworkLayer{"only", wl::gemm(5, 5, 5), false}}));
  query.arrays = {smallArray(4, 4)};

  NetworkExplorer explorer{ServiceOptions{}};
  const NetworkResult network = explorer.explore(query);

  ExplorationService plainService;
  const QueryResult plain = plainService.run(
      layerQuery(query, query.arrays[0], query.network.layers()[0]));

  ASSERT_EQ(network.frontier.size(), plain.frontier.size());
  for (std::size_t i = 0; i < network.frontier.size(); ++i) {
    const NetworkDesign& d = network.frontier[i];
    const DesignReport& rep = plain.frontier[i];
    const auto figures = rep.figures();
    ASSERT_EQ(d.layers.size(), 1u);
    EXPECT_EQ(d.layers[0].dataflow, rep.spec.label());
    EXPECT_EQ(d.cost.cycles, static_cast<double>(rep.perf.totalCycles));
    EXPECT_EQ(d.cost.powerMw, figures.powerMw);
    EXPECT_EQ(d.cost.area, figures.area);
    EXPECT_DOUBLE_EQ(d.cost.utilization, rep.perf.utilization);
  }
  ASSERT_TRUE(network.best.has_value());
  ASSERT_TRUE(plain.best.has_value());
  EXPECT_EQ(network.best->layers[0].dataflow, plain.best->spec.label());
}

TEST(NetworkExplorerTest, RejectsEmptyCandidateArrayList) {
  NetworkQuery query = mlpQuery();
  query.arrays.clear();
  NetworkExplorer explorer{ServiceOptions{}};
  EXPECT_THROW(explorer.explore(query), Error);
}

// A layer whose design space comes up empty (a pointwise shape enumerated
// with the all-unicast designs dropped) must be rejected loudly, not
// composed into a silent empty frontier.
TEST(NetworkExplorerTest, RejectsLayerWithNoRealizableDesign) {
  NetworkQuery query(tensor::NetworkSpec(
      "bad", {tensor::NetworkLayer{"fc", wl::gemm(4, 4, 4), false},
              tensor::NetworkLayer{"scale", wl::pointwiseResidual(3, 4, 4),
                                   /*allowAllUnicast=*/false}}));
  query.arrays = {smallArray(4, 4)};
  NetworkExplorer explorer{ServiceOptions{}};
  try {
    explorer.explore(query);
    FAIL() << "expected tensorlib::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("scale"), std::string::npos);
  }
}

// The pointwise layer explores fine when its allowAllUnicast hint is set —
// the explorer flips dropAllUnicast per layer.
TEST(NetworkExplorerTest, PointwiseLayerUsesItsEnumerationHint) {
  NetworkExplorer explorer{ServiceOptions{}};
  const NetworkResult result = explorer.explore(mlpQuery({smallArray(4, 4)}));
  EXPECT_FALSE(result.frontier.empty());
}

TEST(NetworkExplorerTest, BitIdenticalAcrossThreadsAndCacheStates) {
  const NetworkQuery query = mlpQuery();

  ServiceOptions oneThread;
  oneThread.threads = 1;
  NetworkExplorer serial(oneThread);
  const NetworkResult reference = serial.explore(query);

  ServiceOptions eightThreads;
  eightThreads.threads = 8;
  eightThreads.workUnitSpecs = 32;  // several units per query
  NetworkExplorer parallel(eightThreads);
  const NetworkResult cold = parallel.explore(query);
  const NetworkResult warm = parallel.explore(query);  // pure cache hits

  expectSameResult(reference, cold);
  expectSameResult(reference, warm);

  // The warm run really was served from the cache.
  EXPECT_GT(parallel.service().cacheStats().hits, 0u);
}

// explore() must match composing naive per-layer runs (fresh exhaustive
// service per layer — no pruning, no mapping memo, no sharing) through the
// same composition code path.
TEST(NetworkExplorerTest, ComposedMatchesNaivePerLayerExploration) {
  const NetworkQuery query = mlpQuery();

  NetworkExplorer composed{ServiceOptions{}};
  const NetworkResult fast = composed.explore(query);

  std::vector<std::vector<QueryResult>> naive(query.arrays.size());
  for (std::size_t a = 0; a < query.arrays.size(); ++a) {
    for (const auto& layer : query.network.layers()) {
      ServiceOptions cold;
      cold.enablePruning = false;
      cold.mappingCacheCapacity = 0;
      ExplorationService freshService(cold);
      naive[a].push_back(
          freshService.run(layerQuery(query, query.arrays[a], layer)));
    }
  }
  const NetworkResult reference = composeLayerFrontiers(query, naive);
  expectSameResult(reference, fast);
}

// Independent oracle for the fold-with-pruning composition: enumerate the
// FULL cross product of per-layer frontier picks, Pareto-filter it by
// brute force (no code shared with composeLayerFrontiers), and demand the
// same frontier — a composition bug that hits both the composed and the
// naive path identically cannot hide from this.
TEST(NetworkExplorerTest, CompositionMatchesBruteForceCrossProduct) {
  const NetworkQuery query = mlpQuery({smallArray(4, 4)});

  NetworkExplorer explorer{ServiceOptions{}};
  const NetworkResult composed = explorer.explore(query);

  ExplorationService service;
  std::vector<QueryResult> layers;
  for (const auto& layer : query.network.layers())
    layers.push_back(service.run(layerQuery(query, query.arrays[0], layer)));

  struct Combo {
    ParetoCost cost;
    std::vector<std::size_t> picks;
  };
  std::vector<Combo> combos;
  std::vector<std::size_t> picks(layers.size(), 0);
  for (;;) {
    Combo combo;
    combo.picks = picks;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const DesignReport& rep = layers[l].frontier[picks[l]];
      const auto figures = rep.figures();
      combo.cost.cycles += static_cast<double>(rep.perf.totalCycles);
      combo.cost.powerMw = std::max(combo.cost.powerMw, figures.powerMw);
      combo.cost.area = std::max(combo.cost.area, figures.area);
    }
    combos.push_back(std::move(combo));
    std::size_t l = 0;
    while (l < picks.size()) {
      if (++picks[l] < layers[l].frontier.size()) break;
      picks[l] = 0;
      ++l;
    }
    if (l == picks.size()) break;
  }

  const auto equalCost = [](const ParetoCost& a, const ParetoCost& b) {
    return a.cycles == b.cycles && a.powerMw == b.powerMw && a.area == b.area;
  };
  std::vector<Combo> kept;
  for (const Combo& c : combos) {
    bool keep = true;
    for (const Combo& other : combos) {
      if (dominates(other.cost, c.cost) ||
          (equalCost(other.cost, c.cost) && other.picks < c.picks)) {
        keep = false;
        break;
      }
    }
    if (keep) kept.push_back(c);
  }
  std::sort(kept.begin(), kept.end(), [](const Combo& a, const Combo& b) {
    if (a.cost.cycles != b.cost.cycles) return a.cost.cycles < b.cost.cycles;
    if (a.cost.powerMw != b.cost.powerMw) return a.cost.powerMw < b.cost.powerMw;
    if (a.cost.area != b.cost.area) return a.cost.area < b.cost.area;
    return a.picks < b.picks;
  });

  ASSERT_EQ(composed.frontier.size(), kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const NetworkDesign& d = composed.frontier[i];
    EXPECT_EQ(d.cost.cycles, kept[i].cost.cycles);
    EXPECT_EQ(d.cost.powerMw, kept[i].cost.powerMw);
    EXPECT_EQ(d.cost.area, kept[i].cost.area);
    for (std::size_t l = 0; l < layers.size(); ++l)
      EXPECT_EQ(d.layers[l].dataflow,
                layers[l].frontier[kept[i].picks[l]].spec.label());
  }
}

// Network costs obey the shared-array execution model: cycles sum, power
// and area max, utilization = MACs / (PEs * cycles).
TEST(NetworkExplorerTest, CostCompositionInvariants) {
  const NetworkQuery query = mlpQuery();
  NetworkExplorer explorer{ServiceOptions{}};
  const NetworkResult result = explorer.explore(query);

  ASSERT_FALSE(result.frontier.empty());
  const double macs = static_cast<double>(query.network.totalMacs());
  for (const NetworkDesign& d : result.frontier) {
    ASSERT_LT(d.arrayIndex, query.arrays.size());
    ASSERT_EQ(d.layers.size(), query.network.layerCount());
    double cycles = 0.0, power = 0.0, area = 0.0;
    for (const LayerAssignment& l : d.layers) {
      cycles += static_cast<double>(l.cycles);
      power = std::max(power, l.powerMw);
      area = std::max(area, l.area);
    }
    EXPECT_EQ(d.cost.cycles, cycles);
    EXPECT_EQ(d.cost.powerMw, power);
    EXPECT_EQ(d.cost.area, area);
    const auto& array = query.arrays[d.arrayIndex];
    EXPECT_DOUBLE_EQ(d.cost.utilization,
                     macs / (static_cast<double>(array.rows * array.cols) *
                             d.cost.cycles));
  }

  // The frontier is canonically sorted and mutually non-dominated.
  for (std::size_t i = 1; i < result.frontier.size(); ++i) {
    const auto& prev = result.frontier[i - 1].cost;
    const auto& cur = result.frontier[i].cost;
    EXPECT_LE(prev.cycles, cur.cycles);
  }
  for (const NetworkDesign& a : result.frontier)
    for (const NetworkDesign& b : result.frontier)
      if (&a != &b) EXPECT_FALSE(dominates(a.cost, b.cost));

  // Per-layer accounting: hits + misses + pruned covers each layer's space.
  ASSERT_EQ(result.layers.size(),
            query.arrays.size() * query.network.layerCount());
  for (const NetworkLayerStats& s : result.layers)
    EXPECT_EQ(s.cache.hits + s.cache.misses + s.cache.pruned, s.designs);
}

TEST(NetworkExplorerTest, ParseArrayListAcceptsOnlyStrictRxC) {
  stt::ArrayConfig base;
  base.bandwidthGBps = 12.5;
  const auto arrays = parseArrayList("4x4,16x8", base);
  ASSERT_EQ(arrays.size(), 2u);
  EXPECT_EQ(arrays[0].rows, 4);
  EXPECT_EQ(arrays[0].cols, 4);
  EXPECT_EQ(arrays[1].rows, 16);
  EXPECT_EQ(arrays[1].cols, 8);
  EXPECT_EQ(arrays[1].bandwidthGBps, 12.5);  // inherited from base

  for (const char* bad : {"", "8", "8x", "x8", "8x8x8", "8x8qq", "a8x8",
                          "8x8,", "8 x8", "8x-2", "8x0"})
    EXPECT_THROW(parseArrayList(bad, base), Error) << bad;
}

// Repeated layer shapes pay for evaluation once: the second identical
// layer is served entirely from the cross-query cache.
TEST(NetworkExplorerTest, RepeatedLayersReuseTheServiceCache) {
  NetworkQuery query(*wl::findNetwork("attention-block"));
  query.arrays = {smallArray(4, 4)};
  NetworkExplorer explorer{ServiceOptions{}};
  const NetworkResult result = explorer.explore(query);

  // Layers "av" and "proj" are the same GEMM shape; whichever lands second
  // must see pure hits.
  std::uint64_t hits = 0;
  for (const NetworkLayerStats& s : result.layers) hits += s.cache.hits;
  EXPECT_GT(hits, 0u);
  EXPECT_GT(explorer.service().cacheStats().hits, 0u);
}

}  // namespace
}  // namespace tensorlib::driver
