// Tests for tiling/mapping onto a physical array: tile choice, spatial
// spans, replication (the paper's 15-of-16-rows case), traffic footprints.
#include "stt/mapping.hpp"

#include <gtest/gtest.h>

#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::stt {
namespace {

namespace wl = tensor::workloads;

DataflowSpec gemmSpec(const std::string& label, std::int64_t m, std::int64_t n,
                      std::int64_t k) {
  const auto g = wl::gemm(m, n, k);
  auto spec = findDataflowByLabel(g, label);
  EXPECT_TRUE(spec.has_value()) << label;
  return *spec;
}

TEST(Mapping, GemmSstTileAndCycles) {
  // 8x8x4 GEMM with the Fig.1(b) SST transform on a 4x4 array.
  const auto spec = gemmSpec("MNK-SST", 8, 8, 4);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto mapping = computeMapping(spec, cfg);
  EXPECT_EQ(mapping.fullTile[2], 4);  // k unconstrained spatially
  EXPECT_EQ(mapping.spatialRowsUsed, 4);
  EXPECT_EQ(mapping.spatialColsUsed, 4);
  EXPECT_EQ(mapping.replication, 1);
  EXPECT_EQ(mapping.outerIterations, 1);
  // 2x2 tiles of (4,4,4).
  ASSERT_EQ(mapping.tiles.size(), 1u);
  EXPECT_EQ(mapping.tiles[0].count, 4);
  EXPECT_EQ(mapping.tiles[0].macs, 64);
  // time row extent: (4-1)+(4-1)+(4-1)+1 = 10 for t = m+n+k.
  EXPECT_EQ(mapping.tiles[0].computeCycles, 10);
  EXPECT_EQ(mapping.totalMacs(), 8 * 8 * 4);
}

TEST(Mapping, GemmMmtHasNoPipelineSkew) {
  const auto spec = gemmSpec("MNK-MMT", 8, 8, 4);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto mapping = computeMapping(spec, cfg);
  ASSERT_EQ(mapping.tiles.size(), 1u);
  EXPECT_EQ(mapping.tiles[0].computeCycles, 4);  // t = k only
}

TEST(Mapping, TrafficFootprints) {
  const auto spec = gemmSpec("MNK-MMT", 4, 4, 4);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto mapping = computeMapping(spec, cfg);
  ASSERT_EQ(mapping.tiles.size(), 1u);
  const auto& tc = mapping.tiles[0];
  // A[m,k]: 4x4, B[n,k]: 4x4, C[m,n]: 4x4.
  EXPECT_EQ(tc.tensorFootprints, (std::vector<std::int64_t>{16, 16, 16}));
  EXPECT_EQ(tc.trafficWords, 48);
}

TEST(Mapping, ReplicationPacksSmallTiles) {
  // 2x2x8 GEMM on a 4x4 array: tile footprint 2x2 -> 4 concurrent copies.
  const auto spec = gemmSpec("MNK-MMT", 2, 2, 8);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto mapping = computeMapping(spec, cfg);
  EXPECT_EQ(mapping.spatialRowsUsed, 2);
  EXPECT_EQ(mapping.spatialColsUsed, 2);
  EXPECT_EQ(mapping.replication, 4);
}

TEST(Mapping, PaperFifteenOfSixteenRows) {
  // A kernel loop of extent 3 mapped spatially on a 16-wide array packs
  // floor(16/3)=5 copies: 15 of 16 rows busy (paper Section VI-A).
  const auto conv = wl::conv2d(16, 16, 14, 14, 3, 3);
  const auto spec = findDataflowByLabel(conv, "XPQ-MMB");
  ASSERT_TRUE(spec.has_value());
  ArrayConfig cfg;  // 16x16
  const auto mapping = computeMapping(*spec, cfg);
  const std::int64_t spatialP =
      std::min(mapping.spatialRowsUsed, mapping.spatialColsUsed);
  EXPECT_EQ(spatialP, 3);
  EXPECT_EQ(mapping.replication, 5);
}

TEST(Mapping, RemainderTilesAccounted) {
  const auto spec = gemmSpec("MNK-SST", 10, 10, 10);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto mapping = computeMapping(spec, cfg);
  // 10 = 2 full tiles of 4 + remainder 2, per spatial loop.
  EXPECT_EQ(mapping.totalMacs(), 1000);
  std::int64_t tileCount = 0;
  for (const auto& t : mapping.tiles) tileCount += t.count;
  EXPECT_EQ(tileCount, 3 * 3 * 1);
}

TEST(Mapping, OuterLoopsMultiply) {
  const auto conv = wl::conv2d(8, 8, 8, 8, 3, 3);
  const auto spec = findDataflowByLabel(conv, "KCX-SST");
  ASSERT_TRUE(spec.has_value());
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const auto mapping = computeMapping(*spec, cfg);
  // outer loops: y (8), p (3), q (3).
  EXPECT_EQ(mapping.outerIterations, 8 * 3 * 3);
  EXPECT_EQ(mapping.totalMacs(), conv.totalMacs());
}

TEST(Mapping, SkewedSpaceRowStillFits) {
  // Force a transform with a skewed space row (p1 = m+k): the tile must
  // shrink so the diagonal footprint fits.
  const auto g = wl::gemm(16, 16, 16);
  const SpaceTimeTransform t(linalg::IntMatrix{{1, 0, 1}, {0, 1, 0}, {0, 0, 1}});
  const auto spec = analyzeDataflow(g, LoopSelection(g, {0, 1, 2}), t);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const auto mapping = computeMapping(spec, cfg);
  EXPECT_LE(mapping.spatialRowsUsed, 8);
  EXPECT_LE(mapping.spatialColsUsed, 8);
  EXPECT_EQ(mapping.totalMacs(), 16 * 16 * 16);
}

TEST(Mapping, SpatialSpanHelper) {
  EXPECT_EQ(spatialSpan(linalg::IntVector{1, 0, 0}, 16, 16), 16);
  EXPECT_EQ(spatialSpan(linalg::IntVector{0, 1, 0}, 16, 8), 8);
  EXPECT_EQ(spatialSpan(linalg::IntVector{1, 1, 0}, 16, 8), 8);   // diagonal
  EXPECT_EQ(spatialSpan(linalg::IntVector{2, 0, 0}, 16, 16), 8);  // stride 2
}

TEST(Mapping, TotalsScaleWithProblem) {
  for (std::int64_t size : {8, 16, 32}) {
    const auto spec = gemmSpec("MNK-SST", size, size, size);
    ArrayConfig cfg;
    cfg.rows = cfg.cols = 8;
    const auto mapping = computeMapping(spec, cfg);
    EXPECT_EQ(mapping.totalMacs(), size * size * size);
    EXPECT_GT(mapping.totalTrafficWords(), 0);
    EXPECT_GT(mapping.serialComputeCycles(), 0);
  }
}

void expectSameMapping(const TileMapping& a, const TileMapping& b) {
  EXPECT_EQ(a.fullTile, b.fullTile);
  EXPECT_EQ(a.spatialRowsUsed, b.spatialRowsUsed);
  EXPECT_EQ(a.spatialColsUsed, b.spatialColsUsed);
  EXPECT_EQ(a.replication, b.replication);
  EXPECT_EQ(a.outerIterations, b.outerIterations);
  ASSERT_EQ(a.tiles.size(), b.tiles.size());
  for (std::size_t i = 0; i < a.tiles.size(); ++i) {
    EXPECT_EQ(a.tiles[i].shape, b.tiles[i].shape);
    EXPECT_EQ(a.tiles[i].count, b.tiles[i].count);
    EXPECT_EQ(a.tiles[i].computeCycles, b.tiles[i].computeCycles);
    EXPECT_EQ(a.tiles[i].trafficWords, b.tiles[i].trafficWords);
    EXPECT_EQ(a.tiles[i].tensorFootprints, b.tiles[i].tensorFootprints);
  }
}

TEST(MappingCache, CachedResultsAreBitIdenticalAndCounted) {
  MappingCache cache(/*capacity=*/64, /*shardCount=*/2);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const auto spec = gemmSpec("MNK-SST", 16, 16, 16);

  const auto first = cache.get(spec, cfg);
  const auto again = cache.get(spec, cfg);
  expectSameMapping(*first, computeMapping(spec, cfg));
  EXPECT_EQ(first.get(), again.get());  // one shared entry, not a recompute

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(MappingCache, SignRelativeTransformsShareOneEntry) {
  // computeMapping only reads |T| and |access| coefficients, so specs whose
  // transforms differ in entry signs must collapse onto one tile search.
  const auto g = tensor::workloads::gemm(12, 12, 12);
  const LoopSelection sel(g, {0, 1, 2});
  const auto ctx = makeSpecContext(g, sel);
  const auto plus = analyzeDataflow(
      ctx, SpaceTimeTransform(linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}));
  const auto mixed = analyzeDataflow(
      ctx, SpaceTimeTransform(linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, -1, 1}}));

  MappingCache cache;
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const auto a = cache.get(plus, cfg);
  const auto b = cache.get(mixed, cfg);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  expectSameMapping(*b, computeMapping(mixed, cfg));
}

TEST(MappingCache, BoundedFifoEvictsButStaysCorrect) {
  MappingCache tiny(/*capacity=*/2, /*shardCount=*/1);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  std::vector<DataflowSpec> specs;
  for (std::int64_t size : {6, 8, 10, 12, 14})
    specs.push_back(gemmSpec("MNK-SST", size, size, size));
  for (const auto& spec : specs)
    expectSameMapping(*tiny.get(spec, cfg), computeMapping(spec, cfg));
  const auto stats = tiny.stats();
  EXPECT_EQ(stats.misses, specs.size());
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 2u);
  // Evicted keys recompute correctly.
  expectSameMapping(*tiny.get(specs.front(), cfg),
                    computeMapping(specs.front(), cfg));
}

}  // namespace
}  // namespace tensorlib::stt
