// Tests for the raw-fd networking helpers (support/net.*): line framing
// across arbitrary read boundaries, partial-final-line surfacing, and
// EINTR/short-write-safe sends on both sockets and pipes.
#include "support/net.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

extern "C" {
#include <sys/socket.h>
#include <unistd.h>
}

namespace tensorlib::support::net {
namespace {

TEST(LineReader, FramesLinesAndSurfacesPartialTail) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const char* data = "a\nbb\nccc";
  // sendAll on a pipe also exercises the ENOTSOCK write() fallback.
  ASSERT_TRUE(sendAll(fds[1], data, std::strlen(data)));
  close(fds[1]);

  LineReader reader(fds[0]);
  auto line = reader.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "a");
  EXPECT_TRUE(line->complete);
  line = reader.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "bb");
  EXPECT_TRUE(line->complete);
  // The tail has no '\n': it must come back exactly once, flagged.
  line = reader.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "ccc");
  EXPECT_FALSE(line->complete);
  EXPECT_FALSE(reader.next().has_value());
  close(fds[0]);
}

TEST(LineReader, ReassemblesLinesSplitAcrossWrites) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread writer([&] {
    const char* chunks[] = {"hel", "lo\nwo", "rld\n"};
    for (const char* chunk : chunks) {
      ASSERT_TRUE(sendAll(fds[1], chunk, std::strlen(chunk)));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    close(fds[1]);
  });
  LineReader reader(fds[0]);
  auto line = reader.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "hello");
  EXPECT_TRUE(line->complete);
  line = reader.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "world");
  EXPECT_TRUE(line->complete);
  EXPECT_FALSE(reader.next().has_value());
  writer.join();
  close(fds[0]);
}

TEST(LineReader, EmptyLinesAreCompleteLines) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const char* data = "\n\nx\n";
  ASSERT_TRUE(sendAll(fds[1], data, std::strlen(data)));
  close(fds[1]);
  LineReader reader(fds[0]);
  for (const char* expected : {"", "", "x"}) {
    auto line = reader.next();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->text, expected);
    EXPECT_TRUE(line->complete);
  }
  EXPECT_FALSE(reader.next().has_value());
  close(fds[0]);
}

TEST(SendAll, ReportsClosedPeerInsteadOfKillingTheProcess) {
  std::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);
  EXPECT_FALSE(sendAll(fds[1], "x", 1));
  close(fds[1]);

  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  close(fds[0]);
  EXPECT_FALSE(sendAll(fds[1], "x", 1));
  close(fds[1]);
}

TEST(Listeners, EphemeralTcpPortIsReportedBack) {
  int port = -1;
  const int fd = listenTcp("127.0.0.1", 0, 4, &port);
  ASSERT_GE(fd, 0);
  EXPECT_GT(port, 0);
  const int client = connectTcp("127.0.0.1", port);
  EXPECT_GE(client, 0);
  if (client >= 0) close(client);
  close(fd);
}

}  // namespace
}  // namespace tensorlib::support::net
