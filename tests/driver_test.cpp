// Tests for the high-level driver (Session): label compilation, objective-
// driven exploration, artifact emission and verification plumbing.
#include "driver/session.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::driver {
namespace {

namespace wl = tensor::workloads;

Session gemmSession(std::int64_t size, std::int64_t pes) {
  stt::ArrayConfig array;
  array.rows = array.cols = pes;
  return Session(wl::gemm(size, size, size), array);
}

TEST(Session, CompileLabelRealizable) {
  const auto s = gemmSession(32, 8);
  const auto report = s.compileLabel("MNK-SST");
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->spec.label(), "MNK-SST");
  EXPECT_GT(report->perf.utilization, 0.0);
  EXPECT_GT(report->asic.powerMw, 0.0);
  EXPECT_NE(report->summary().find("MNK-SST"), std::string::npos);
}

TEST(Session, CompileLabelUnrealizable) {
  const auto s = gemmSession(16, 4);
  EXPECT_FALSE(s.compileLabel("MNK-TTT").has_value());
}

TEST(Session, ExploreAllNonEmptyAndEvaluated) {
  const auto s = gemmSession(32, 8);
  const auto all = s.exploreAll();
  EXPECT_GT(all.size(), 50u);
  for (const auto& r : all) {
    EXPECT_GT(r.perf.totalCycles, 0) << r.spec.label();
    EXPECT_GT(r.asic.areaMm2, 0.0) << r.spec.label();
  }
}

TEST(Session, BestPerformanceIsMaxUtilization) {
  const auto s = gemmSession(64, 8);
  const auto best = s.compileBest(Objective::Performance);
  for (const auto& r : s.exploreAll())
    EXPECT_LE(r.perf.utilization, best.perf.utilization + 1e-12);
}

TEST(Session, BestPowerStaysNearBestPerformance) {
  const auto s = gemmSession(64, 8);
  const auto perf = s.compileBest(Objective::Performance);
  const auto lowPower = s.compileBest(Objective::Power);
  EXPECT_GE(lowPower.perf.utilization, 0.9 * perf.perf.utilization - 1e-12);
  EXPECT_LE(lowPower.asic.powerMw, perf.asic.powerMw + 1e-12);
}

TEST(Session, BestEnergyDelayMinimizesProduct) {
  const auto s = gemmSession(64, 8);
  const auto best = s.compileBest(Objective::EnergyDelay);
  for (const auto& r : s.exploreAll())
    EXPECT_GE(r.energyDelay(), best.energyDelay() - 1e-9);
}

TEST(Session, VerifyBehavioralPasses) {
  const auto s = gemmSession(16, 4);
  const auto report = s.compileLabel("MNK-MMT");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(s.verifyBehavioral(*report));
}

TEST(Session, VerifyRtlPasses) {
  const auto s = gemmSession(8, 4);
  const auto report = s.compileLabel("MNK-SST");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(s.verifyRtl(*report));
}

TEST(Session, EmitVerilogProducesModule) {
  const auto s = gemmSession(8, 4);
  const auto report = s.compileLabel("MNK-STS");
  ASSERT_TRUE(report.has_value());
  const auto v = s.emitVerilog(*report);
  EXPECT_NE(v.find("module tensorlib_MNK_STS"), std::string::npos);
}

TEST(Session, DepthwiseExplorationFindsChannelParallelDesigns) {
  // The generality claim: the best depthwise designs are NOT pure
  // systolic/stationary, which is why systolic-only generators lose there.
  stt::ArrayConfig array;
  array.rows = array.cols = 8;
  Session s(wl::depthwiseConv(16, 14, 14, 3, 3), array);
  const auto best = s.compileBest(Objective::Performance);
  bool pureSystolic = true;
  for (const auto& role : best.spec.tensors()) {
    const auto c = role.dataflow.dataflowClass;
    if (c != stt::DataflowClass::Systolic && c != stt::DataflowClass::Stationary)
      pureSystolic = false;
  }
  EXPECT_FALSE(pureSystolic) << best.spec.describe();
}

}  // namespace
}  // namespace tensorlib::driver
