// Model-level differential oracle: built-in models explored per layer,
// stitched into ONE compiled-tape netlist with inter-layer buffers, and
// executed element-exactly against the composed dense reference — at one
// and at eight service threads (the winner assignment, and therefore the
// verdict, must be thread-count invariant). Plus the fault-injection
// localization contract, the JSONL model path, and the seeded network
// fuzzer + shrinker built on the same oracle.
#include "verify/model_conformance.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "arch/model.hpp"
#include "driver/wire.hpp"
#include "support/jsonl.hpp"
#include "verify/network_fuzz.hpp"

namespace tensorlib::verify {
namespace {

namespace wl = tensor::workloads;

const tensor::NetworkSpec& builtin(const std::string& name) {
  const tensor::NetworkSpec* model = wl::findNetwork(name);
  EXPECT_NE(model, nullptr) << name;
  return *model;
}

ModelConformanceOptions withThreads(std::size_t threads) {
  ModelConformanceOptions o;
  o.threads = threads;
  return o;
}

// The acceptance matrix: three stitched builtin models (including the
// eight-layer resnet-deep) element-exact against the composed reference at
// {1, 8} exploration threads, with identical per-layer assignments.
TEST(ModelConformance, BuiltinModelsConformAtOneAndEightThreads) {
  for (const char* name : {"resnet-deep", "transformer-stack", "mlp-3"}) {
    std::vector<std::vector<ModelLayerPick>> picks;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const ModelConformanceReport report =
          checkModel(builtin(name), withThreads(threads));
      EXPECT_TRUE(report.pass()) << report.summary();
      EXPECT_GT(report.cyclesRun, 0) << report.summary();
      picks.push_back(report.picks);
    }
    ASSERT_EQ(picks[0].size(), picks[1].size()) << name;
    for (std::size_t l = 0; l < picks[0].size(); ++l) {
      EXPECT_EQ(picks[0][l].used, picks[1][l].used)
          << name << " layer " << picks[0][l].layer
          << ": assignment differs across thread counts";
    }
  }
}

TEST(ModelConformance, DeepModelHasAtLeastEightLayers) {
  EXPECT_GE(builtin("resnet-deep").layerCount(), 8u);
  const ModelConformanceReport report =
      checkModel(builtin("resnet-deep"), withThreads(1));
  EXPECT_TRUE(report.pass()) << report.summary();
  EXPECT_EQ(report.picks.size(), builtin("resnet-deep").layerCount());
  EXPECT_EQ(report.bufferCapacities.size(),
            builtin("resnet-deep").layerCount() - 1);
  for (const std::int64_t capacity : report.bufferCapacities)
    EXPECT_GT(capacity, 0) << report.summary();
}

TEST(ModelConformance, RemainingBuiltinsAlsoStitchAndConform) {
  for (const char* name : {"resnet-block", "attention-block", "moe-mix"}) {
    const ModelConformanceReport report =
        checkModel(builtin(name), withThreads(1));
    EXPECT_TRUE(report.pass()) << report.summary();
  }
}

// Fault injection: corrupting the compiled tape's width masks must surface
// as a divergence that names a (layer, element, cycle) and carries the
// replay handle — the oracle's localization contract.
TEST(ModelConformance, TamperedTapeDivergesWithReplayHandle) {
  ModelConformanceOptions o = withThreads(1);
  o.tamperRtlTape = true;
  const ModelConformanceReport report = checkModel(builtin("mlp-3"), o);
  ASSERT_TRUE(report.divergence.has_value())
      << "tampered tape went undetected: " << report.summary();
  EXPECT_EQ(report.divergence->engine, "compiled");
  EXPECT_FALSE(report.divergence->layer.empty());
  EXPECT_GE(report.divergence->cycle, 0);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("DIVERGED"), std::string::npos) << summary;
  EXPECT_NE(summary.find("--model mlp-3"), std::string::npos) << summary;
  EXPECT_NE(summary.find("--data-seed"), std::string::npos) << summary;
}

// The stitched engine-vs-engine cross-check: compiled and legacy
// interpretations of the SAME merged netlist agree bit-exactly.
TEST(ModelConformance, LegacyEngineAgreesOnStitchedTop) {
  ModelConformanceOptions o = withThreads(1);
  o.alsoLegacy = true;
  const ModelConformanceReport report =
      checkModel(builtin("transformer-stack"), o);
  EXPECT_TRUE(report.pass()) << report.summary();
}

// The JSONL front door: a model described line by line stitches and
// conforms exactly like a builtin.
TEST(ModelConformance, JsonlModelConforms) {
  std::istringstream jsonl(
      "{\"model\": \"tiny-chain\"}\n"
      "{\"layer\": \"fc1\", \"workload\": \"gemm\", \"m\": 8, \"n\": 8, "
      "\"k\": 8}\n"
      "{\"layer\": \"fc2\", \"workload\": \"gemm\", \"m\": 8, \"n\": 4, "
      "\"k\": 8}\n");
  const tensor::NetworkSpec network =
      wl::parseNetworkJsonl(jsonl, "tiny-chain");
  const ModelConformanceReport report = checkModel(network, withThreads(1));
  EXPECT_TRUE(report.pass()) << report.summary();
  EXPECT_EQ(report.model, "tiny-chain");
}

// --- wire protocol --------------------------------------------------------

// The server-side request kind: {"model_conformance": ...} lines parse into
// a ModelConformance request carrying the oracle's options verbatim.
TEST(ModelConformance, WireRequestParsesOptionsAndTarget) {
  const auto request = driver::wire::parseRequest(support::parseJsonLine(
      "{\"model_conformance\": \"mlp-3\", \"data_seed\": 7, \"threads\": 8, "
      "\"rows\": 8, \"cols\": 8, \"data_width\": 16, "
      "\"tamper_rtl_tape\": true, \"also_legacy\": true}"));
  EXPECT_EQ(request.kind, driver::wire::Request::Kind::ModelConformance);
  ASSERT_TRUE(request.model.has_value());
  EXPECT_EQ(request.name, "mlp-3");
  EXPECT_EQ(request.modelOptions.dataSeed, 7u);
  EXPECT_EQ(request.modelOptions.threads, 8u);
  EXPECT_EQ(request.modelOptions.array.rows, 8);
  EXPECT_EQ(request.modelOptions.array.cols, 8);
  EXPECT_EQ(request.modelOptions.dataWidth, 16);
  EXPECT_TRUE(request.modelOptions.tamperRtlTape);
  EXPECT_TRUE(request.modelOptions.alsoLegacy);

  EXPECT_THROW(driver::wire::parseRequest(support::parseJsonLine(
                   "{\"model_conformance\": \"no-such-model\"}")),
               Error);
}

TEST(ModelConformance, WireResultLineCarriesVerdictAndDivergence) {
  ModelConformanceReport report;
  report.model = "mlp-3";
  report.dataSeed = 7;
  report.threads = 2;
  report.picks = {{"fc1", "MNK-SMM", "MNK-SMM", false},
                  {"fc2", "MNK-SMM", "MNK-SSM", true}};
  report.bufferCapacities = {252};
  report.cyclesRun = 100;
  report.stallSlots = 5;
  {
    const std::string line =
        driver::wire::modelConformanceResultLine(3, report);
    EXPECT_NE(line.find("\"query\": 3"), std::string::npos) << line;
    EXPECT_NE(line.find("\"model_conformance\": \"mlp-3\""),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"pass\": true"), std::string::npos) << line;
    EXPECT_NE(line.find("\"buffer_capacities\": [252]"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"substituted\": true"), std::string::npos) << line;
    EXPECT_EQ(line.find("\"divergence\""), std::string::npos) << line;
  }
  ModelDivergence divergence;
  divergence.layerIndex = 1;
  divergence.layer = "fc2";
  divergence.element = {2, 3};
  divergence.expected = 31;
  divergence.actual = 0;
  divergence.cycle = 22;
  divergence.engine = "compiled";
  report.divergence = divergence;
  const std::string line = driver::wire::modelConformanceResultLine(3, report);
  EXPECT_NE(line.find("\"pass\": false"), std::string::npos) << line;
  EXPECT_NE(line.find("\"element\": [2, 3]"), std::string::npos) << line;
  EXPECT_NE(line.find("\"cycle\": 22"), std::string::npos) << line;
  EXPECT_NE(line.find("\"engine\": \"compiled\""), std::string::npos) << line;
}

// --- network fuzzer -------------------------------------------------------

TEST(NetworkFuzz, RandomNetworksAreDeterministicAndStitchable) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const tensor::NetworkSpec a = randomNetwork(seed);
    const tensor::NetworkSpec b = randomNetwork(seed);
    EXPECT_EQ(a.str(), b.str()) << "seed " << seed;
    EXPECT_GE(a.layerCount(), 2u);
    EXPECT_LE(a.layerCount(), 6u);
    for (std::size_t l = 1; l < a.layers().size(); ++l) {
      const auto& prev = a.layers()[l - 1].algebra;
      const auto& cur = a.layers()[l].algebra;
      EXPECT_TRUE(arch::chainRule(prev.tensorShape(prev.output()),
                                  cur.tensorShape(cur.inputs()[0]))
                      .has_value())
          << "seed " << seed << " layers " << l - 1 << "->" << l;
    }
  }
}

TEST(NetworkFuzz, ShortSweepConforms) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const ModelConformanceReport report =
        checkModel(randomNetwork(seed), withThreads(1));
    EXPECT_TRUE(report.pass()) << "seed " << seed << "\n" << report.summary();
  }
}

TEST(NetworkFuzz, ShrinkFindsMinimalWindow) {
  const tensor::NetworkSpec net = builtin("resnet-deep");
  // Synthetic predicate: "fails" whenever the window contains fc2 -> fc3;
  // the shrinker must find exactly that pair.
  const auto containsPair = [](const tensor::NetworkSpec& candidate) {
    for (std::size_t l = 1; l < candidate.layers().size(); ++l)
      if (candidate.layers()[l - 1].name == "fc2" &&
          candidate.layers()[l].name == "fc3")
        return true;
    return false;
  };
  const tensor::NetworkSpec shrunk = shrinkNetwork(net, containsPair);
  ASSERT_EQ(shrunk.layerCount(), 2u) << shrunk.str();
  EXPECT_EQ(shrunk.layers()[0].name, "fc2");
  EXPECT_EQ(shrunk.layers()[1].name, "fc3");
  EXPECT_NE(shrunk.name().find("/shrink["), std::string::npos)
      << shrunk.name();
}

TEST(NetworkFuzz, ShrinkKeepsOriginalWhenNothingSmallerFails) {
  const tensor::NetworkSpec net = randomNetwork(7);
  const tensor::NetworkSpec shrunk = shrinkNetwork(
      net, [&](const tensor::NetworkSpec& candidate) {
        return candidate.layerCount() == net.layerCount();
      });
  EXPECT_EQ(shrunk.layerCount(), net.layerCount());
}

}  // namespace
}  // namespace tensorlib::verify
