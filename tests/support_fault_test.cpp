// FaultInjector semantics: spec grammar, occurrence counting, one-shot vs
// every-call faults, disarm, and the near-free disarmed fast path the
// library-resident hooks rely on.
#include "support/fault.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace tensorlib::support {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().disarm(); }
  void TearDown() override { FaultInjector::instance().disarm(); }
};

TEST_F(FaultTest, DisarmedFiresNothing) {
  EXPECT_FALSE(fireFault("snapshot_write").has_value());
  EXPECT_EQ(FaultInjector::instance().triggered("snapshot_write"), 0u);
}

TEST_F(FaultTest, OneShotFiresOnFirstCallOnly) {
  FaultInjector::instance().arm("snapshot_write=fail");
  const auto first = fireFault("snapshot_write");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->action, "fail");
  EXPECT_EQ(first->value, 0);
  EXPECT_FALSE(fireFault("snapshot_write").has_value());
  EXPECT_EQ(FaultInjector::instance().triggered("snapshot_write"), 1u);
}

TEST_F(FaultTest, OccurrenceSelectsNthCall) {
  FaultInjector::instance().arm("work_unit=throw@3");
  EXPECT_FALSE(fireFault("work_unit").has_value());
  EXPECT_FALSE(fireFault("work_unit").has_value());
  const auto third = fireFault("work_unit");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->action, "throw");
  EXPECT_FALSE(fireFault("work_unit").has_value());
}

TEST_F(FaultTest, OccurrenceZeroFiresEveryCall) {
  FaultInjector::instance().arm("work_unit=sleep:7@0");
  for (int i = 0; i < 4; ++i) {
    const auto action = fireFault("work_unit");
    ASSERT_TRUE(action.has_value());
    EXPECT_EQ(action->action, "sleep");
    EXPECT_EQ(action->value, 7);
  }
  EXPECT_EQ(FaultInjector::instance().triggered("work_unit"), 4u);
}

TEST_F(FaultTest, ValueParameterParsed) {
  FaultInjector::instance().arm("work_unit=exit:42");
  const auto action = fireFault("work_unit");
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->action, "exit");
  EXPECT_EQ(action->value, 42);
}

TEST_F(FaultTest, CommaSeparatedSpecsArmIndependentPoints) {
  FaultInjector::instance().arm("snapshot_write=corrupt,work_unit=sleep:5@0");
  const auto snap = fireFault("snapshot_write");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->action, "corrupt");
  const auto unit = fireFault("work_unit");
  ASSERT_TRUE(unit.has_value());
  EXPECT_EQ(unit->action, "sleep");
}

TEST_F(FaultTest, ArmAppendsWithoutClearing) {
  FaultInjector::instance().arm("work_unit=throw@1");
  FaultInjector::instance().arm("work_unit=sleep:3@2");
  EXPECT_EQ(fireFault("work_unit")->action, "throw");
  EXPECT_EQ(fireFault("work_unit")->action, "sleep");
}

TEST_F(FaultTest, DisarmClearsFaultsAndCounters) {
  FaultInjector::instance().arm("work_unit=throw@0");
  ASSERT_TRUE(fireFault("work_unit").has_value());
  FaultInjector::instance().disarm();
  EXPECT_FALSE(fireFault("work_unit").has_value());
  EXPECT_EQ(FaultInjector::instance().triggered("work_unit"), 0u);
}

TEST_F(FaultTest, MalformedSpecsThrow) {
  EXPECT_NO_THROW(FaultInjector::instance().arm(""));  // blank = no faults
  EXPECT_THROW(FaultInjector::instance().arm("no_equals"), Error);
  EXPECT_THROW(FaultInjector::instance().arm("point="), Error);
  EXPECT_THROW(FaultInjector::instance().arm("=action"), Error);
  EXPECT_THROW(FaultInjector::instance().arm("p=a:xyz"), Error);
  EXPECT_THROW(FaultInjector::instance().arm("p=a@xyz"), Error);
}

}  // namespace
}  // namespace tensorlib::support
