// Unit tests for dense exact matrices.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace tensorlib::linalg {
namespace {

TEST(Matrix, InitializerList) {
  IntMatrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(1, 0), 3);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((IntMatrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, Identity) {
  const auto id = IntMatrix::identity(3);
  EXPECT_EQ(id.at(0, 0), 1);
  EXPECT_EQ(id.at(0, 1), 0);
}

TEST(Matrix, Multiply) {
  IntMatrix a{{1, 2}, {3, 4}};
  IntMatrix b{{5, 6}, {7, 8}};
  IntMatrix expect{{19, 22}, {43, 50}};
  EXPECT_EQ(a * b, expect);
}

TEST(Matrix, MultiplyVector) {
  IntMatrix a{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}};
  const IntVector x{1, 2, 3};
  const IntVector expect{1, 2, 6};  // the paper's Fig. 1(b) example
  EXPECT_EQ(a * x, expect);
}

TEST(Matrix, DimensionMismatchThrows) {
  IntMatrix a{{1, 2}};
  IntMatrix b{{1, 2}};
  EXPECT_THROW(a * b, Error);
}

TEST(Matrix, AddSub) {
  IntMatrix a{{1, 2}, {3, 4}};
  IntMatrix b{{4, 3}, {2, 1}};
  IntMatrix sum{{5, 5}, {5, 5}};
  EXPECT_EQ(a + b, sum);
  EXPECT_EQ(sum - b, a);
}

TEST(Matrix, Transpose) {
  IntMatrix a{{1, 2, 3}, {4, 5, 6}};
  IntMatrix expect{{1, 4}, {2, 5}, {3, 6}};
  EXPECT_EQ(a.transposed(), expect);
}

TEST(Matrix, RowColSelect) {
  IntMatrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a.row(1), (IntVector{4, 5, 6}));
  EXPECT_EQ(a.col(2), (IntVector{3, 6}));
  IntMatrix sel = a.selectColumns({2, 0});
  IntMatrix expect{{3, 1}, {6, 4}};
  EXPECT_EQ(sel, expect);
}

TEST(Matrix, OutOfRangeThrows) {
  IntMatrix a{{1, 2}};
  EXPECT_THROW(a.at(1, 0), Error);
  EXPECT_THROW(a.row(2), Error);
}

TEST(Matrix, RationalConversionRoundTrip) {
  IntMatrix a{{1, -2}, {0, 7}};
  EXPECT_EQ(toInteger(toRational(a)), a);
}

TEST(VectorOps, Dot) {
  EXPECT_EQ(dot(IntVector{1, 2, 3}, IntVector{4, 5, 6}), 32);
  EXPECT_THROW(dot(IntVector{1}, IntVector{1, 2}), Error);
}

TEST(VectorOps, IsZero) {
  EXPECT_TRUE(isZeroVector(IntVector{0, 0}));
  EXPECT_FALSE(isZeroVector(IntVector{0, 1}));
}

TEST(VectorOps, Primitive) {
  EXPECT_EQ(primitive(IntVector{2, 4, 6}), (IntVector{1, 2, 3}));
  EXPECT_EQ(primitive(IntVector{-2, 4}), (IntVector{1, -2}));
  EXPECT_EQ(primitive(IntVector{0, 0}), (IntVector{0, 0}));
  EXPECT_EQ(primitive(IntVector{0, -3}), (IntVector{0, 1}));
}

TEST(VectorOps, ClearDenominators) {
  const RatVector v{Rational(1, 2), Rational(1, 3), Rational(0)};
  EXPECT_EQ(clearDenominators(v), (IntVector{3, 2, 0}));
}

TEST(VectorOps, Str) {
  EXPECT_EQ(str(IntVector{1, -2}), "(1,-2)");
}

}  // namespace
}  // namespace tensorlib::linalg
