// Pareto-frontier unit tests: hand-constructed dominated/non-dominated
// sets, exact-cost ties, NaN/infinite-cost rejection, insertion-order
// independence, and the Objective::Power "within 10% of best performance"
// band edge cases.
#include "driver/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace tensorlib::driver {
namespace {

ParetoEntry entry(double cycles, double power, double area, std::size_t order,
                  double util = 0.0) {
  ParetoEntry e;
  e.cost = {cycles, power, area, util};
  e.order = order;
  e.label = "p" + std::to_string(order);
  return e;
}

std::vector<std::size_t> sortedOrders(const ParetoFrontier& f) {
  std::vector<std::size_t> out;
  for (const auto& e : f.sorted()) out.push_back(e.order);
  return out;
}

TEST(Dominance, StrictAndTied) {
  EXPECT_TRUE(dominates({1, 1, 1, 0}, {2, 2, 2, 0}));
  EXPECT_TRUE(dominates({1, 2, 2, 0}, {2, 2, 2, 0}));  // <= all, < in one
  EXPECT_FALSE(dominates({2, 2, 2, 0}, {2, 2, 2, 0}));  // equal: no strict dim
  EXPECT_FALSE(dominates({1, 3, 1, 0}, {2, 2, 2, 0}));  // incomparable
  EXPECT_FALSE(dominates({2, 2, 2, 0}, {1, 1, 1, 0}));
}

TEST(Frontier, DominatedInsertRejected) {
  ParetoFrontier f;
  EXPECT_TRUE(f.insert(entry(10, 10, 10, 0)));
  EXPECT_FALSE(f.insert(entry(11, 10, 10, 1)));
  EXPECT_FALSE(f.insert(entry(10, 10, 10.5, 2)));
  EXPECT_EQ(f.size(), 1u);
}

TEST(Frontier, DominatingInsertPrunes) {
  ParetoFrontier f;
  EXPECT_TRUE(f.insert(entry(10, 10, 10, 0)));
  EXPECT_TRUE(f.insert(entry(20, 5, 10, 1)));  // incomparable: kept
  std::vector<std::size_t> pruned;
  EXPECT_TRUE(f.insert(entry(9, 5, 9, 2), &pruned));  // dominates both
  EXPECT_EQ(f.size(), 1u);
  std::sort(pruned.begin(), pruned.end());
  EXPECT_EQ(pruned, (std::vector<std::size_t>{0, 1}));
}

TEST(Frontier, IncomparablePointsAccumulate) {
  ParetoFrontier f;
  EXPECT_TRUE(f.insert(entry(1, 30, 3, 0)));
  EXPECT_TRUE(f.insert(entry(2, 20, 2, 1)));
  EXPECT_TRUE(f.insert(entry(3, 10, 1, 2)));
  EXPECT_EQ(sortedOrders(f), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Frontier, ExactCostTiesCollapseToSmallestOrder) {
  ParetoFrontier a;
  EXPECT_TRUE(a.insert(entry(5, 5, 5, 7)));
  EXPECT_FALSE(a.insert(entry(5, 5, 5, 9)));  // same cost, later order
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.entries()[0].order, 7u);

  // Reverse arrival: the earlier order must win and evict the resident.
  ParetoFrontier b;
  EXPECT_TRUE(b.insert(entry(5, 5, 5, 9)));
  std::vector<std::size_t> pruned;
  EXPECT_TRUE(b.insert(entry(5, 5, 5, 7), &pruned));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.entries()[0].order, 7u);
  EXPECT_EQ(pruned, (std::vector<std::size_t>{9}));
}

TEST(Frontier, NonFiniteCostsRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  ParetoFrontier f;
  EXPECT_FALSE(f.insert(entry(nan, 1, 1, 0)));
  EXPECT_FALSE(f.insert(entry(1, inf, 1, 1)));
  EXPECT_FALSE(f.insert(entry(1, 1, -inf, 2)));
  EXPECT_TRUE(f.empty());
  // A NaN point must also never evict residents.
  EXPECT_TRUE(f.insert(entry(1, 1, 1, 3)));
  EXPECT_FALSE(f.insert(entry(nan, 0, 0, 4)));
  EXPECT_EQ(f.size(), 1u);
}

TEST(Frontier, InsertionOrderNeverMatters) {
  const std::vector<ParetoEntry> points = {
      entry(1, 30, 3, 0), entry(2, 20, 2, 1), entry(3, 10, 1, 2),
      entry(2, 25, 3, 3),  // dominated by 1
      entry(1, 30, 3, 4),  // exact tie with 0, larger order
      entry(3, 10, 2, 5),  // dominated by 2
  };
  std::vector<std::size_t> perm = {0, 1, 2, 3, 4, 5};
  std::vector<std::vector<std::size_t>> seen;
  for (int trial = 0; trial < 24; ++trial) {
    ParetoFrontier f;
    for (std::size_t i : perm) f.insert(points[i]);
    seen.push_back(sortedOrders(f));
    std::next_permutation(perm.begin(), perm.end());
  }
  for (const auto& orders : seen)
    EXPECT_EQ(orders, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Frontier, MergeEqualsBulkInsert) {
  ParetoFrontier left, right, bulk;
  const std::vector<ParetoEntry> points = {
      entry(1, 9, 1, 0), entry(2, 8, 2, 1), entry(3, 7, 3, 2),
      entry(4, 6, 4, 3), entry(1, 9, 1, 4)};
  for (std::size_t i = 0; i < points.size(); ++i) {
    (i % 2 ? right : left).insert(points[i]);
    bulk.insert(points[i]);
  }
  left.merge(right);
  EXPECT_EQ(sortedOrders(left), sortedOrders(bulk));
}

TEST(PickBest, PerformancePrefersUtilizationThenPower) {
  std::vector<ParetoEntry> entries = {
      entry(20, 5, 1, 0, /*util=*/0.5),
      entry(10, 9, 1, 1, /*util=*/1.0),
      entry(10, 7, 1, 2, /*util=*/1.0),  // util tie: lower power wins
  };
  const auto best = pickBest(entries, Objective::Performance);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 2u);
}

TEST(PickBest, PerformanceFullTieFallsBackToOrder) {
  std::vector<ParetoEntry> entries = {
      entry(10, 7, 1, 4, 1.0), entry(10, 7, 1, 2, 1.0)};
  const auto best = pickBest(entries, Objective::Performance);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(entries[*best].order, 2u);
}

TEST(PickBest, PowerBandEdgeInclusive) {
  // util exactly 0.9 * best (0.9 * 1.0) must stay in the band — the same
  // `< 0.9 * best` exclusion Session::compileBest uses.
  std::vector<ParetoEntry> entries = {
      entry(10, 9, 1, 0, 1.0),
      entry(11, 5, 1, 1, 0.9),     // on the edge: eligible, cheapest
      entry(12, 1, 1, 2, 0.899),   // just below: excluded despite 1 mW
  };
  const auto best = pickBest(entries, Objective::Power);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(PickBest, PowerTieBreaksTowardUtilization) {
  std::vector<ParetoEntry> entries = {
      entry(10, 5, 1, 0, 0.95), entry(9, 5, 1, 1, 1.0)};
  const auto best = pickBest(entries, Objective::Power);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(PickBest, PowerAllZeroUtilizationKeepsEveryoneEligible) {
  std::vector<ParetoEntry> entries = {
      entry(10, 5, 1, 0, 0.0), entry(9, 3, 1, 1, 0.0)};
  const auto best = pickBest(entries, Objective::Power);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(PickBest, EnergyDelayMinimizesProduct) {
  std::vector<ParetoEntry> entries = {
      entry(10, 10, 1, 0, 1.0),  // 100
      entry(50, 1, 1, 1, 0.2),   // 50
      entry(25, 2, 1, 2, 0.4),   // 50: product tie, fewer cycles wins
  };
  const auto best = pickBest(entries, Objective::EnergyDelay);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 2u);
}

TEST(PickBest, EmptyEntries) {
  EXPECT_FALSE(pickBest({}, Objective::Performance).has_value());
}

}  // namespace
}  // namespace tensorlib::driver
