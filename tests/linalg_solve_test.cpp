// Unit + property tests for exact solvers: RREF, rank, determinant,
// inverse, nullspace, span membership.
#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include "support/prng.hpp"

namespace tensorlib::linalg {
namespace {

TEST(Rref, IdentityStaysIdentity) {
  const auto r = rref(toRational(IntMatrix::identity(3)));
  EXPECT_EQ(r.rank, 3u);
  EXPECT_EQ(toInteger(r.matrix), IntMatrix::identity(3));
}

TEST(Rref, RankDeficient) {
  IntMatrix m{{1, 2}, {2, 4}};
  EXPECT_EQ(rank(m), 1u);
}

TEST(Determinant, Known) {
  EXPECT_EQ(determinant(IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}), 1);
  EXPECT_EQ(determinant(IntMatrix{{2, 0}, {0, 3}}), 6);
  EXPECT_EQ(determinant(IntMatrix{{1, 2}, {2, 4}}), 0);
  EXPECT_EQ(determinant(IntMatrix{{0, 1}, {1, 0}}), -1);
}

TEST(Inverse, PaperExample) {
  // T from Fig. 1(b).
  IntMatrix t{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}};
  const auto inv = inverse(t);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(toInteger(*inv * toRational(t)), IntMatrix::identity(3));
}

TEST(Inverse, SingularReturnsNullopt) {
  EXPECT_FALSE(inverse(IntMatrix{{1, 2}, {2, 4}}).has_value());
}

TEST(Nullspace, FullRankIsTrivial) {
  EXPECT_EQ(nullspaceBasis(IntMatrix::identity(3)).cols(), 0u);
}

TEST(Nullspace, GemmAAccess) {
  // A[m,k] access over loops (m,n,k): nullspace is span{e_n}.
  IntMatrix a{{1, 0, 0}, {0, 0, 1}};
  const IntMatrix basis = nullspaceBasis(a);
  ASSERT_EQ(basis.cols(), 1u);
  EXPECT_EQ(basis.col(0), (IntVector{0, 1, 0}));
}

TEST(Nullspace, ConvInputAccess) {
  // A[c, y+p, x+q] over loops (c,y,x,p,q): rank 3 access => nullity 2,
  // directions (y - p) and (x - q).
  IntMatrix a{{1, 0, 0, 0, 0}, {0, 1, 0, 1, 0}, {0, 0, 1, 0, 1}};
  const IntMatrix basis = nullspaceBasis(a);
  ASSERT_EQ(basis.cols(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    const IntVector v = basis.col(j);
    // Check membership in the true nullspace: a * v == 0.
    EXPECT_TRUE(isZeroVector(toRational(a) * RatVector{
                    Rational(v[0]), Rational(v[1]), Rational(v[2]),
                    Rational(v[3]), Rational(v[4])}));
  }
}

TEST(InSpan, Basics) {
  IntMatrix basis(3, 2);
  basis.at(0, 0) = 1;  // (1,0,0)
  basis.at(2, 1) = 1;  // (0,0,1)
  EXPECT_TRUE(inSpan(basis, IntVector{2, 0, -3}));
  EXPECT_FALSE(inSpan(basis, IntVector{0, 1, 0}));
  // Empty basis spans only zero.
  IntMatrix empty(3, 0);
  EXPECT_TRUE(inSpan(empty, IntVector{0, 0, 0}));
  EXPECT_FALSE(inSpan(empty, IntVector{1, 0, 0}));
}

TEST(Solve, ConsistentSystem) {
  RatMatrix m = toRational(IntMatrix{{1, 1}, {1, -1}});
  const auto x = solve(m, RatVector{Rational(3), Rational(1)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rational(2));
  EXPECT_EQ((*x)[1], Rational(1));
}

TEST(Solve, InconsistentReturnsNullopt) {
  RatMatrix m = toRational(IntMatrix{{1, 1}, {2, 2}});
  EXPECT_FALSE(solve(m, RatVector{Rational(1), Rational(3)}).has_value());
}

// ---------------------------------------------------------------------------
// Property sweep over random small integer matrices: the fundamental
// rank-nullity and inverse identities must hold exactly.
class SolvePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolvePropertyTest, RankNullityAndInverseRoundTrip) {
  Prng prng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 1 + prng.next() % 4;
    const std::size_t cols = 1 + prng.next() % 4;
    IntMatrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j)
        m.at(i, j) = prng.uniformInt(-3, 3);

    const std::size_t r = rank(m);
    const IntMatrix ns = nullspaceBasis(m);
    EXPECT_EQ(r + ns.cols(), cols) << m.str();

    // Every nullspace basis vector satisfies m * v == 0.
    const RatMatrix rm = toRational(m);
    for (std::size_t j = 0; j < ns.cols(); ++j) {
      RatVector v(cols);
      for (std::size_t i = 0; i < cols; ++i) v[i] = Rational(ns.at(i, j));
      EXPECT_TRUE(isZeroVector(rm * v)) << m.str();
    }

    if (rows == cols) {
      const auto inv = inverse(m);
      if (determinant(m) != 0) {
        ASSERT_TRUE(inv.has_value());
        EXPECT_EQ(toInteger(*inv * rm), IntMatrix::identity(rows)) << m.str();
      } else {
        EXPECT_FALSE(inv.has_value());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolvePropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace tensorlib::linalg
