// End-to-end hardware generation tests: DataflowSpec -> netlist -> RTL
// simulation -> functional match against golden values. This is the
// repository's strongest claim: the generated register-level hardware
// computes the tensor algebra for every rank-0/1 dataflow combination.
#include <gtest/gtest.h>

#include "arch/memory.hpp"
#include "arch/testbench.hpp"
#include "hwir/verilog.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::arch {
namespace {

namespace wl = tensor::workloads;

stt::ArrayConfig smallArray(std::int64_t rows, std::int64_t cols) {
  stt::ArrayConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  return cfg;
}

void expectRtlMatch(const tensor::TensorAlgebra& algebra,
                    const std::string& label, std::int64_t rows,
                    std::int64_t cols,
                    const HardwareConfig& hw = HardwareConfig{}) {
  const auto spec = stt::findDataflowByLabel(algebra, label);
  ASSERT_TRUE(spec.has_value()) << label;
  const auto acc = generateAccelerator(*spec, smallArray(rows, cols), hw);
  const auto env = tensor::makeRandomInputs(algebra, 23);
  const auto result = runAcceleratorTile(acc, env);
  EXPECT_TRUE(result.matches())
      << label << ": RTL output differs from golden by " << result.maxAbsDiff;
}

TEST(ArchGrid, LinesAndChains) {
  PeGrid grid{4, 4};
  EXPECT_EQ(grid.count(), 16);
  EXPECT_EQ(linesAlong(grid, 0, 1).size(), 4u);   // rows
  EXPECT_EQ(linesAlong(grid, 1, 0).size(), 4u);   // columns
  EXPECT_EQ(linesAlong(grid, 1, 1).size(), 7u);   // diagonals
  EXPECT_EQ(chainsAlong(grid, 0, 1).size(), 4u);
  EXPECT_EQ(chainsAlong(grid, 0, 2).size(), 8u);  // stride-2: interleaved
}

TEST(ArchGrid, StepsBetween) {
  EXPECT_EQ(stepsBetween({0, 0}, {0, 3}, 0, 1), 3);
  EXPECT_EQ(stepsBetween({1, 1}, {3, 3}, 1, 1), 2);
  EXPECT_THROW(stepsBetween({0, 0}, {1, 2}, 1, 1), Error);
}

TEST(ArchGen, RejectsRank2Outputs) {
  // MTTKRP under (i,k,l) leaves the output D with rank-2 reuse; the local-
  // accumulate + global-reduce structure is left to the behavioral tier.
  const auto mt = wl::mttkrp(4, 4, 4, 4);
  const auto spec = stt::findDataflowByLabel(mt, "IKL-UBBB");
  ASSERT_TRUE(spec.has_value());
  EXPECT_THROW(generateAccelerator(*spec, smallArray(4, 4)), Error);
}

TEST(ArchGen, GeneratesValidNetlist) {
  const auto g = wl::gemm(4, 4, 4);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  const auto acc = generateAccelerator(*spec, smallArray(4, 4));
  EXPECT_NO_THROW(acc.netlist.validate());
  EXPECT_GT(acc.netlist.size(), 100u);
  EXPECT_EQ(acc.grid.p1Span, 4);
  EXPECT_EQ(acc.grid.p2Span, 4);
  // SST has no stationary input: no load phase.
  EXPECT_EQ(acc.loadCycles, 0);
  EXPECT_EQ(acc.computeCycles, acc.trace.cycles);
}

TEST(ArchGen, StationaryInputAddsLoadPhase) {
  const auto g = wl::gemm(4, 4, 4);
  const auto spec = stt::findDataflowByLabel(g, "MNK-STS");  // B stationary
  const auto acc = generateAccelerator(*spec, smallArray(4, 4));
  EXPECT_EQ(acc.loadCycles, acc.grid.p2Span + 1);
}

// --- Functional RTL verification across GEMM dataflow classes ------------

TEST(ArchRtl, GemmOutputStationarySst) {
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-SST", 4, 4);
}

TEST(ArchRtl, GemmWeightStationarySts) {
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-STS", 4, 4);
}

TEST(ArchRtl, GemmDoubleMulticastMmt) {
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-MMT", 4, 4);
}

TEST(ArchRtl, GemmReductionTreeOutput) {
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-MTM", 4, 4);
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-SSM", 4, 4);
}

TEST(ArchRtl, GemmInputStationaryTss) {
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-TSS", 4, 4);
}

TEST(ArchRtl, GemmMixedMst) {
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-MST", 4, 4);
}

TEST(ArchRtl, BatchedGemvUnicastInput) {
  expectRtlMatch(wl::batchedGemv(4, 4, 4), "MNK-USS", 4, 4);
  expectRtlMatch(wl::batchedGemv(4, 4, 4), "MNK-UMM", 4, 4);
  expectRtlMatch(wl::batchedGemv(4, 4, 4), "MNK-UMT", 4, 4);
}

TEST(ArchRtl, ConvKcxTile) {
  // One tile of a GEMM-ized convolution (outer loops y,p,q fixed at 0).
  expectRtlMatch(wl::conv2d(4, 4, 4, 4, 3, 3), "KCX-SST", 4, 4);
  expectRtlMatch(wl::conv2d(4, 4, 4, 4, 3, 3), "KCX-STS", 4, 4);
}

TEST(ArchRtl, NonSquareArray) {
  expectRtlMatch(wl::gemm(4, 6, 5), "MNK-SST", 4, 6);
}

TEST(ArchRtl, Float32Datapath) {
  HardwareConfig hw;
  hw.dataKind = hwir::DataKind::Float32;
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-SST", 4, 4, hw);
  expectRtlMatch(wl::gemm(4, 4, 4), "MNK-MMT", 4, 4, hw);
}

TEST(ArchRtl, MttkrpRank2InputThreeWayMac) {
  // MTTKRP IJK-SSBT: three-input MAC per PE, C has a rank-2
  // multicast+stationary plane (resides per PE, bus-loaded), D stationary.
  expectRtlMatch(wl::mttkrp(4, 4, 4, 2), "IJK-SSBT", 4, 4);
}

TEST(ArchRtl, TtmcBroadcastAndStationaryPlanes) {
  // TTMc IJK-BBBU: A and B multicast+stationary planes, C a 2-D broadcast
  // (one global bus), D unicast output.
  expectRtlMatch(wl::ttmc(4, 4, 4, 2, 2), "IJK-BBBU", 4, 4);
}

TEST(ArchRtl, TtmcSystolicWithRank2Inputs) {
  // TTMc IKL-SBBS: systolic A and output D, two broadcast-plane inputs.
  expectRtlMatch(wl::ttmc(4, 4, 4, 3, 3), "IKL-SBBS", 4, 4);
}

TEST(ArchRtl, SystolicMulticastInputPlane) {
  // TTMc (i,j,k) with the skewed time row t=i+j+k: C[m,k]'s reuse plane
  // intersects the t-axis -> bus-fed systolic chains (Table I last row).
  const auto tt = wl::ttmc(4, 4, 4, 2, 2);
  const auto sel = stt::LoopSelection::byNames(tt, {"i", "j", "k"});
  const stt::SpaceTimeTransform t(
      linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}});
  const auto spec = stt::analyzeDataflow(tt, sel, t);
  ASSERT_EQ(spec.tensors()[2].dataflow.dataflowClass,
            stt::DataflowClass::SystolicMulticast);
  const auto acc = generateAccelerator(spec, smallArray(4, 4));
  const auto env = tensor::makeRandomInputs(tt, 53);
  const auto result = runAcceleratorTile(acc, env);
  EXPECT_TRUE(result.matches()) << "systolic+multicast plane mismatch";
}

TEST(ArchRtl, SkewedTimeRowStrideTwo) {
  // t = m + 2n + k gives A a (0,1,2) reuse step: two-deep pipeline hop.
  const auto g = wl::gemm(4, 4, 4);
  const stt::SpaceTimeTransform t(
      linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 2, 1}});
  const auto spec = stt::analyzeDataflow(g, stt::LoopSelection(g, {0, 1, 2}), t);
  const auto acc = generateAccelerator(spec, smallArray(4, 4));
  const auto env = tensor::makeRandomInputs(g, 31);
  const auto result = runAcceleratorTile(acc, env);
  EXPECT_TRUE(result.matches()) << "stride-2 systolic chain mismatch";
}

// Property sweep: every netlist-generable enumerated GEMM design must be
// RTL-functionally correct.
class ArchRtlSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchRtlSweepTest, EnumeratedGemmDesignsMatchGolden) {
  const auto g = wl::gemm(4, 4, 4);
  const auto specs =
      stt::enumerateTransforms(g, stt::LoopSelection(g, {0, 1, 2}));
  const auto env = tensor::makeRandomInputs(g, 41);
  const std::size_t shards = 6;
  const std::size_t shard = static_cast<std::size_t>(GetParam());
  for (std::size_t i = shard; i < specs.size(); i += shards) {
    bool rank1Only = true;
    for (const auto& role : specs[i].tensors())
      if (role.dataflow.reuseRank > 1) rank1Only = false;
    if (!rank1Only) continue;
    const auto acc = generateAccelerator(specs[i], smallArray(4, 4));
    const auto result = runAcceleratorTile(acc, env);
    EXPECT_TRUE(result.matches()) << specs[i].describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ArchRtlSweepTest, ::testing::Range(0, 6));

// --- Full-workload RTL execution: the controller's wrapping stage counter
// runs every tile (and outer iteration) back to back on the same netlist.

void expectFullRtlMatch(const tensor::TensorAlgebra& algebra,
                        const std::string& label, std::int64_t rows,
                        std::int64_t cols) {
  const auto spec = stt::findDataflowByLabel(algebra, label);
  ASSERT_TRUE(spec.has_value()) << label;
  HardwareConfig hw;
  hw.injectEverywhere = true;  // remainder tiles inject at interior PEs
  const auto acc = generateAccelerator(*spec, smallArray(rows, cols), hw);
  const auto env = tensor::makeRandomInputs(algebra, 67);
  const auto run = runAcceleratorFull(acc, env);
  EXPECT_TRUE(run.matches())
      << label << ": full-workload RTL differs by " << run.maxAbsDiff;
  // The collected result must equal the complete software reference, not
  // just the per-tile goldens.
  const auto golden = tensor::referenceExecute(algebra, env);
  EXPECT_EQ(run.collected.maxAbsDiff(golden), 0.0) << label;
}

TEST(ArchRtlFull, GemmMultiTileWithRemainders) {
  // 6x7x5 on a 4x4 array: remainder tiles in both spatial loops.
  expectFullRtlMatch(wl::gemm(6, 7, 5), "MNK-SST", 4, 4);
  expectFullRtlMatch(wl::gemm(6, 7, 5), "MNK-MMT", 4, 4);
}

TEST(ArchRtlFull, GemmStationaryReloadAcrossStages) {
  // B stationary: stages must reload the double buffers between tiles.
  expectFullRtlMatch(wl::gemm(8, 8, 6), "MNK-STS", 4, 4);
  expectFullRtlMatch(wl::gemm(8, 8, 6), "MNK-TSS", 4, 4);
}

TEST(ArchRtlFull, GemmReductionTreeMultiTile) {
  expectFullRtlMatch(wl::gemm(6, 6, 6), "MNK-SSM", 4, 4);
}

TEST(ArchRtlFull, ConvWithOuterLoops) {
  // Conv2D KCX: y, p, q run as sequential outer loops => many stages.
  expectFullRtlMatch(wl::conv2d(4, 4, 3, 4, 2, 2), "KCX-SST", 4, 4);
}

TEST(ArchRtlFull, BatchedGemvUnicast) {
  expectFullRtlMatch(wl::batchedGemv(6, 6, 4), "MNK-UMT", 4, 4);
}

TEST(ArchRtlFull, MttkrpRank2Inputs) {
  expectFullRtlMatch(wl::mttkrp(5, 5, 4, 2), "IJK-SSBT", 4, 4);
}

TEST(ArchVerilog, GeneratedDesignEmits) {
  const auto g = wl::gemm(4, 4, 4);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  const auto acc = generateAccelerator(*spec, smallArray(4, 4));
  const std::string v = hwir::emitVerilog(acc.netlist);
  EXPECT_NE(v.find("module tensorlib_MNK_SST"), std::string::npos);
  EXPECT_NE(v.find("C_drain_0"), std::string::npos);  // stationary drain port
  EXPECT_GT(v.size(), 5000u);
}

TEST(ArchMemory, BankInventory) {
  const auto g = wl::gemm(16, 16, 16);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  stt::ArrayConfig cfg;  // 16x16
  const auto banks = deriveBanks(*spec, cfg, 16);
  ASSERT_EQ(banks.size(), 3u);
  // Systolic A enters along one edge: one bank per head line.
  EXPECT_EQ(banks[0].banks, 16);
  EXPECT_GT(totalBufferBits(banks), 0);
  // Unicast needs a port per PE.
  const auto bg = wl::batchedGemv(16, 16, 16);
  const auto uspec = stt::findDataflowByLabel(bg, "MNK-UMM");
  const auto ubanks = deriveBanks(*uspec, cfg, 16);
  EXPECT_EQ(ubanks[0].banks, 256);
}

}  // namespace
}  // namespace tensorlib::arch
