// Inter-layer buffer properties of the stitched model accelerator: the
// planner-derived depths are SUFFICIENT (every builtin model executes with
// no deadlock and no extra stalls at exactly the planner's peak occupancy)
// and minimal-ish (one element less than the peak provably stalls — and on
// a constructed single-stage producer, deadlocks — the pipeline). Also the
// planner/engine equivalence the sizing argument rests on: the bounded
// schedule at committed capacities replays the unbounded schedule.
#include "arch/model.hpp"

#include <gtest/gtest.h>

#include "stt/enumerate.hpp"
#include "tensor/network.hpp"
#include "tensor/reference.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::arch {
namespace {

namespace wl = tensor::workloads;

/// First design of the layer's enumerated space the netlist generator can
/// realize — the cheap spec source for planner-level tests (no exploration
/// service, no cost models).
stt::DataflowSpec firstRealizableSpec(const tensor::TensorAlgebra& algebra,
                                      bool allowAllUnicast,
                                      const ModelBuildOptions& options) {
  stt::EnumerationOptions enumeration;
  enumeration.dropAllUnicast = !allowAllUnicast;
  HardwareConfig hw = options.hw;
  hw.injectEverywhere = true;
  for (const stt::DataflowSpec& spec :
       stt::enumerateDesignSpace(algebra, enumeration)) {
    try {
      (void)generateAccelerator(spec, options.array, hw);
      return spec;
    } catch (const Error&) {
      continue;
    }
  }
  fail("no realizable design for " + algebra.str());
}

ModelAccelerator buildFromNetwork(const tensor::NetworkSpec& network,
                                  const ModelBuildOptions& options = {}) {
  std::vector<std::pair<std::string, stt::DataflowSpec>> layerSpecs;
  for (const auto& layer : network.layers())
    layerSpecs.emplace_back(
        layer.name,
        firstRealizableSpec(layer.algebra, layer.allowAllUnicast, options));
  return buildModelAccelerator(layerSpecs, options);
}

/// A two-layer GEMM chain whose producer drains its whole output in ONE
/// stage: the planner peak equals that stage's allocation, so peak - 1 can
/// never admit it — the constructed deadlock case.
ModelAccelerator singleStageChain(
    const std::vector<std::int64_t>& bufferDepthOverride = {}) {
  ModelBuildOptions options;
  options.bufferDepthOverride = bufferDepthOverride;
  return buildFromNetwork(
      tensor::NetworkSpec(
          "tiny-pair",
          {wl::makeNetworkLayer("fc1", "gemm",
                                {{"m", 4}, {"n", 4}, {"k", 4}}),
           wl::makeNetworkLayer("fc2", "gemm",
                                {{"m", 4}, {"n", 4}, {"k", 4}})}),
      options);
}

TEST(ModelBuffer, PlannerDepthsSufficientForAllBuiltinModels) {
  for (const tensor::NetworkSpec& network : wl::builtinNetworks()) {
    const ModelAccelerator model = buildFromNetwork(network);
    std::vector<std::int64_t> capacities;
    for (const BufferPlan& buffer : model.buffers) {
      EXPECT_EQ(buffer.capacity, buffer.peak) << network.name();
      EXPECT_GT(buffer.capacity, 0) << network.name();
      EXPECT_LE(buffer.peak, buffer.producerElements) << network.name();
      capacities.push_back(buffer.capacity);
    }
    // The bounded schedule at the committed depths replays the unbounded
    // one exactly: no deadlock, no extra stalls, same start cycles.
    const ModelSchedulePlan unbounded = planModelSchedule(model, {});
    const ModelSchedulePlan bounded = planModelSchedule(model, capacities);
    EXPECT_EQ(bounded.totalCycles, unbounded.totalCycles) << network.name();
    EXPECT_EQ(bounded.stallSlots, unbounded.stallSlots) << network.name();
    EXPECT_EQ(bounded.stageStart, unbounded.stageStart) << network.name();
  }
}

TEST(ModelBuffer, DepthBelowPeakStallsOrDeadlocksEveryBuiltinModel) {
  for (const tensor::NetworkSpec& network : wl::builtinNetworks()) {
    const ModelAccelerator model = buildFromNetwork(network);
    const ModelSchedulePlan committed =
        planModelSchedule(model, [&] {
          std::vector<std::int64_t> caps;
          for (const BufferPlan& b : model.buffers) caps.push_back(b.capacity);
          return caps;
        }());
    // Shrink the FIRST buffer below its peak: the schedule must get
    // strictly worse (back-pressure stalls) or deadlock outright.
    std::vector<std::int64_t> caps;
    for (const BufferPlan& b : model.buffers) caps.push_back(b.capacity);
    ASSERT_FALSE(caps.empty()) << network.name();
    caps[0] -= 1;
    try {
      const ModelSchedulePlan starved = planModelSchedule(model, caps);
      EXPECT_GT(starved.totalCycles, committed.totalCycles)
          << network.name() << ": depth-1 did not stall the pipeline";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
          << network.name() << ": " << e.what();
    }
  }
}

TEST(ModelBuffer, SingleStageProducerDeadlocksOneBelowPeak) {
  const ModelAccelerator model = singleStageChain();
  ASSERT_EQ(model.buffers.size(), 1u);
  const std::int64_t peak = model.buffers[0].peak;
  // fc1's whole 4x4 output drains in one stage slot, so the peak is one
  // stage's allocation and peak - 1 can never admit it.
  EXPECT_THROW(planModelSchedule(model, {peak - 1}), Error);
  try {
    planModelSchedule(model, {peak - 1});
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("deadlock"), std::string::npos) << message;
    EXPECT_NE(message.find("buffer 0"), std::string::npos) << message;
    // The PRODUCER is the blocked party: its stage cannot allocate.
    EXPECT_NE(message.find("fc1"), std::string::npos) << message;
  }
  // And the engine honors the committed override the same way.
  const ModelAccelerator starved = singleStageChain({peak - 1});
  std::vector<tensor::TensorEnv> envs;
  for (const auto& layer : starved.layers)
    envs.push_back(tensor::makeRandomInputs(layer.acc.spec.algebra(), 1));
  EXPECT_THROW(runModelAccelerator(starved, envs), Error);
}

TEST(ModelBuffer, SingleLayerModelNeedsNoBuffers) {
  ModelBuildOptions options;
  const auto layer =
      wl::makeNetworkLayer("only", "gemm", {{"m", 8}, {"n", 8}, {"k", 8}});
  const ModelAccelerator model = buildModelAccelerator(
      {{layer.name,
        firstRealizableSpec(layer.algebra, layer.allowAllUnicast, options)}},
      options);
  EXPECT_TRUE(model.buffers.empty());
  const ModelSchedulePlan plan = planModelSchedule(model, {});
  EXPECT_EQ(plan.stallSlots, 0);
  // One stage per slot, back to back: the single-layer model times exactly
  // like the standalone accelerator's full run.
  const auto& starts = plan.stageStart[0];
  for (std::size_t s = 0; s < starts.size(); ++s)
    EXPECT_EQ(starts[s],
              static_cast<std::int64_t>(s) * model.layers[0].acc.stagePeriod);
}

// The TSan-shard stress: run the stitched engine itself (not just the
// planner) on a model with every chain kind, both engines, and verify
// element-exactness against the composed reference.
TEST(ModelBuffer, StitchedEngineStress) {
  const tensor::NetworkSpec* network = wl::findNetwork("moe-mix");
  ASSERT_NE(network, nullptr);
  const ModelAccelerator model = buildFromNetwork(*network);
  std::vector<tensor::TensorEnv> envs;
  for (std::size_t l = 0; l < model.layers.size(); ++l)
    envs.push_back(
        tensor::makeRandomInputs(model.layers[l].acc.spec.algebra(), l + 1));
  const std::vector<tensor::DenseTensor> golden =
      composedReference(model, envs);
  for (const hwir::SimEngine engine :
       {hwir::SimEngine::Compiled, hwir::SimEngine::Legacy}) {
    ModelRunOptions options;
    options.engine = engine;
    const ModelRunResult run = runModelAccelerator(model, envs, options);
    ASSERT_EQ(run.outputs.size(), golden.size());
    for (std::size_t l = 0; l < golden.size(); ++l)
      EXPECT_EQ(golden[l].maxAbsDiff(run.outputs[l]), 0.0)
          << network->name() << " layer " << l;
  }
}

}  // namespace
}  // namespace tensorlib::arch
